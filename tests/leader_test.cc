// Specification sweeps for leader election (objects/leader.h).
//
// Leader election is one read away from the TAS (the claim register is
// write-once and non-nil before any loser returns), so agreement is as
// deterministic as the TAS's safety: every axis swept here — n in 1..17,
// deterministic/random/adversary schedules, both storage policies, all
// three substrates — asserts that every terminated process reports the
// SAME leader id, that the leader is self-consistent (only the elected
// process claims leadership), and that the shared claim/announce registers
// agree with the reports. The fixed-shape variant pins its op count to
// fixed_shape_leader_ops(n) = fixed_shape_tas_ops(n) + 1.
#include "objects/leader.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/lower_bound.h"
#include "hw/hw_executor.h"
#include "hw/oversub_executor.h"
#include "memory/storage_policy.h"
#include "objects/tas.h"
#include "runtime/toss.h"
#include "sched/scheduler.h"

namespace llsc {
namespace {

constexpr std::uint64_t kBudget = 1 << 20;

class LeaderSpecTest : public ::testing::TestWithParam<StoragePolicy> {};

INSTANTIATE_TEST_SUITE_P(
    Storage, LeaderSpecTest,
    ::testing::Values(StoragePolicy::kBoxed, StoragePolicy::kInline),
    [](const ::testing::TestParamInfo<StoragePolicy>& info) {
      return info.param == StoragePolicy::kBoxed ? "Boxed" : "Inline";
    });

void run_and_check(const ProcBody& body, int n, std::uint64_t toss_seed,
                   Scheduler& sched, StoragePolicy storage,
                   const std::string& what) {
  auto tosses = std::make_shared<SeededTossAssignment>(toss_seed);
  System sys(n, body, tosses);
  sys.memory().set_storage_policy(storage);
  ASSERT_TRUE(sched.run(sys, kBudget).all_terminated) << what;
  const LeaderCheckResult res = check_leader_run(sys);
  EXPECT_TRUE(res.ok) << what << ": " << res.summary();
  EXPECT_EQ(res.num_reporters, n) << what;
  EXPECT_GE(res.leader, 0) << what;
  EXPECT_LT(res.leader, n) << what;
}

TEST_P(LeaderSpecTest, AgreementAcrossSchedulers) {
  const StoragePolicy storage = GetParam();
  const ProcBody body = leader_election_body();
  for (int n = 1; n <= 17; ++n) {
    for (const std::uint64_t seed : {2ull, 29ull, 1998ull}) {
      const std::string tag = "n=" + std::to_string(n) +
                              " toss_seed=" + std::to_string(seed);
      RoundRobinScheduler rr;
      run_and_check(body, n, seed, rr, storage, tag + " [round-robin]");
      SequentialScheduler seq;
      run_and_check(body, n, seed, seq, storage, tag + " [sequential]");
      RandomScheduler rnd(seed ^ 0x1EADu);
      run_and_check(body, n, seed, rnd, storage, tag + " [random]");
    }
  }
}

TEST_P(LeaderSpecTest, WinnerFlagBodySurvivesTheKnowledgeAdversary) {
  // leader_winner_flag_body returns 1 iff self was elected — the wakeup-
  // style winner scan of the Monte-Carlo classifier applies unchanged, so
  // the Section 5.3 adversary schedule (with and without adaptive fault
  // injection) can target leader election like any wakeup algorithm.
  const StoragePolicy storage = GetParam();
  const ProcBody body = leader_winner_flag_body();
  AdversaryOptions adversary;
  adversary.max_rounds = 1 << 14;
  for (const int n : {2, 5, 9, 16}) {
    for (std::uint64_t s = 0; s < 6; ++s) {
      const McSampleOutcome clean =
          run_mc_sample(body, n, 0x1EAD + s, adversary, nullptr, storage);
      ASSERT_EQ(clean.status, RunStatus::kClean) << "n=" << n << " s=" << s;
      EXPECT_TRUE(clean.has_winner);

      FaultPlan plan;
      plan.seed = 0xFA1 + s;
      plan.strategy = FaultStrategyKind::kAdaptive;
      plan.fault_budget = 1 + (s % 5);
      const McSampleOutcome hostile =
          run_mc_sample(body, n, 0x1EAD + s, adversary, &plan, storage);
      ASSERT_EQ(hostile.status, RunStatus::kClean)
          << "n=" << n << " s=" << s;
      EXPECT_TRUE(hostile.has_winner);
    }
  }
}

TEST_P(LeaderSpecTest, FixedShapeOpCountIsScheduleIndependent) {
  const StoragePolicy storage = GetParam();
  const ProcBody body = fixed_shape_leader_body();
  for (int n = 1; n <= 17; ++n) {
    const std::uint64_t want = fixed_shape_leader_ops(n);
    for (const std::uint64_t seed : {5ull, 505ull}) {
      auto tosses = std::make_shared<SeededTossAssignment>(seed);
      System sys(n, body, tosses);
      sys.memory().set_storage_policy(storage);
      RandomScheduler sched(seed);
      ASSERT_TRUE(sched.run(sys, kBudget).all_terminated) << "n=" << n;
      int reporters = 0;
      for (ProcId p = 0; p < n; ++p) {
        EXPECT_EQ(sys.process(p).shared_ops(), want)
            << "n=" << n << " p=" << p;
        const Value& r = sys.process(p).result();
        if (r.holds_u64() && r.as_u64() == 1) ++reporters;
      }
      // Fault-free: some claim SC succeeded from nil, and exactly the
      // process whose id sits in the claim register reports leadership.
      EXPECT_EQ(reporters, 1) << "n=" << n;
    }
  }
}

// --- hw + oversubscribed substrates -------------------------------------

void check_hw_agreement(const HwRunResult& run, int n,
                        const std::string& what) {
  ASSERT_EQ(run.status, RunStatus::kClean) << what;
  ASSERT_TRUE(run.results[0].holds_u64()) << what;
  const std::uint64_t leader = run.results[0].as_u64();
  EXPECT_LT(leader, static_cast<std::uint64_t>(n)) << what;
  for (ProcId p = 1; p < n; ++p) {
    ASSERT_TRUE(run.results[p].holds_u64()) << what << " p=" << p;
    EXPECT_EQ(run.results[p].as_u64(), leader) << what << " p=" << p;
  }
}

TEST_P(LeaderSpecTest, AgreementOnHw) {
  const StoragePolicy storage = GetParam();
  const ProcBody body = leader_election_body();
  for (const int n : {1, 2, 3, 5, 8}) {
    for (std::uint64_t s = 0; s < 8; ++s) {
      HwRunOptions options;
      options.seed = 0xB055 + s;
      options.storage = storage;
      HwExecutor exec(options);
      check_hw_agreement(exec.run(n, body), n,
                         "n=" + std::to_string(n) +
                             " s=" + std::to_string(s));
    }
  }
}

TEST_P(LeaderSpecTest, AgreementOversubscribed) {
  const StoragePolicy storage = GetParam();
  const ProcBody body = leader_election_body();
  for (const int n : {4, 9, 17}) {
    for (std::uint64_t s = 0; s < 4; ++s) {
      OversubRunOptions options;
      options.seed = 0x0B05 + s;
      options.storage = storage;
      options.num_threads = 2;
      OversubscribedExecutor exec(options);
      check_hw_agreement(exec.run(n, body), n,
                         "n=" + std::to_string(n) +
                             " s=" + std::to_string(s) + " [oversub]");
    }
  }
}

// --- the checker's own conditions ---------------------------------------

SimTask return_value_body(ProcCtx ctx, std::uint64_t v, int ops) {
  for (int i = 0; i < ops; ++i) (void)co_await ctx.validate(0);
  co_return Value::of_u64(v);
}

SimTask claim_then_return(ProcCtx ctx, std::uint64_t claim_v,
                          std::uint64_t v) {
  (void)co_await ctx.ll(0);
  (void)co_await ctx.sc(0, Value::of_u64(claim_v));
  co_return Value::of_u64(v);
}

TEST(LeaderChecker, NonIdViolatesCondition1) {
  System sys(2, [](ProcCtx ctx, ProcId i, int) {
    return return_value_body(ctx, i == 0 ? 9 : 0, 1);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1000).all_terminated);
  const LeaderCheckResult res = check_leader_run(sys);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.summary().find("(1)"), std::string::npos) << res.summary();
}

TEST(LeaderChecker, DisagreementViolatesCondition2) {
  System sys(2, [](ProcCtx ctx, ProcId i, int) {
    return return_value_body(ctx, static_cast<std::uint64_t>(i), 1);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1000).all_terminated);
  const LeaderCheckResult res = check_leader_run(sys);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.summary().find("(2)"), std::string::npos) << res.summary();
}

TEST(LeaderChecker, ClaimMismatchViolatesCondition4) {
  // All three agree on leader 1, but the claim register says 2.
  System sys(3, [](ProcCtx ctx, ProcId i, int) {
    if (i == 0) return claim_then_return(ctx, 2, 1);
    return return_value_body(ctx, 1, 1);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1000).all_terminated);
  const LeaderCheckResult res = check_leader_run(sys);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.summary().find("(4)"), std::string::npos) << res.summary();
}

TEST(LeaderChecker, AgreeingRunPasses) {
  System sys(3, [](ProcCtx ctx, ProcId i, int) {
    if (i == 1) return claim_then_return(ctx, 1, 1);
    return return_value_body(ctx, 1, 1);
  });
  SequentialScheduler sched;  // p0 first would read a nil claim: use any
  ASSERT_TRUE(sched.run(sys, 1000).all_terminated);
  const LeaderCheckResult res = check_leader_run(sys);
  EXPECT_TRUE(res.ok) << res.summary();
  EXPECT_EQ(res.leader, 1);
  EXPECT_EQ(res.num_reporters, 3);
}

}  // namespace
}  // namespace llsc
