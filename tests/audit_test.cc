// Tests for the Section 7 register-width auditor: log-time wakeup fits in
// O(log n)-bit registers; the log-time universal construction does not.
#include "core/audit.h"

#include <gtest/gtest.h>

#include "core/adversary.h"
#include "objects/arith.h"
#include "sched/scheduler.h"
#include "universal/group_update.h"
#include "util/str.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

TEST(Value, EncodedBits) {
  EXPECT_EQ(Value{}.encoded_bits(), 0u);
  EXPECT_EQ(Value::of_u64(0).encoded_bits(), 1u);
  EXPECT_EQ(Value::of_u64(1).encoded_bits(), 1u);
  EXPECT_EQ(Value::of_u64(255).encoded_bits(), 8u);
  EXPECT_EQ(Value::of_u64(256).encoded_bits(), 9u);
  EXPECT_EQ(Value::of_big(BigInt::pow2(100)).encoded_bits(), 101u);
  EXPECT_EQ(Value::of_string("ab").encoded_bits(), 16u);
  // Structured payloads without an encoded_bits hook are unbounded.
  EXPECT_EQ(Value::of(UpSetVal{{1, 2}}).encoded_bits(), ~std::size_t{0});
}

TEST(Audit, TournamentFitsLogNBitRegisters) {
  for (const int n : {4, 16, 64, 256}) {
    System sys(n, tournament_wakeup());
    const RunLog log = run_adversary(sys);
    ASSERT_TRUE(log.all_terminated);
    const WidthAudit audit = audit_register_widths(sys.trace());
    EXPECT_TRUE(audit.bounded) << "n=" << n;
    // Counts are at most n: ceil(log2(n)) + 1 bits suffice.
    EXPECT_LE(audit.max_bits, ceil_log2(static_cast<std::size_t>(n)) + 1)
        << "n=" << n;
    EXPECT_GT(audit.writes_inspected, 0u);
  }
}

TEST(Audit, NaiveCounterFitsLogNBitRegisters) {
  const int n = 32;
  System sys(n, counter_wakeup());
  const RunLog log = run_adversary(sys);
  ASSERT_TRUE(log.all_terminated);
  const WidthAudit audit = audit_register_widths(sys.trace());
  EXPECT_TRUE(audit.bounded);
  EXPECT_LE(audit.max_bits, ceil_log2(n) + 1);
}

SimTask uc_worker(ProcCtx ctx, UniversalConstruction* uc) {
  ObjOp op{"fetch&increment", {}};
  const Value r = co_await uc->execute(ctx, std::move(op));
  co_return r;
}

TEST(Audit, GroupUpdateNeedsUnboundedRegisters) {
  // The tight O(log n) construction writes announce sets and object
  // snapshots into registers — the "impractical register size" the paper's
  // Section 7 calls out.
  const int n = 8;
  GroupUpdateUC uc(n, [] { return std::make_unique<FetchAddObject>(64); });
  System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
    return uc_worker(ctx, &uc);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1 << 22).all_terminated);
  const WidthAudit audit = audit_register_widths(sys.trace());
  EXPECT_FALSE(audit.bounded);
  EXPECT_NE(audit.summary().find("UNBOUNDED"), std::string::npos);
}

TEST(Audit, EmptyTraceIsTriviallyBounded) {
  const WidthAudit audit = audit_register_widths({});
  EXPECT_TRUE(audit.bounded);
  EXPECT_EQ(audit.max_bits, 0u);
  EXPECT_EQ(audit.writes_inspected, 0u);
}

TEST(Audit, FailedScWritesNothing) {
  // Only successful SCs install values; failed ones must not count.
  System sys(4, counter_wakeup());
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 10000).all_terminated);
  std::uint64_t successes = 0;
  std::uint64_t swaps = 0;
  for (const OpRecord& rec : sys.trace()) {
    successes += rec.op.kind == OpKind::kSC && rec.result.flag;
    swaps += rec.op.kind == OpKind::kSwap;
  }
  const WidthAudit audit = audit_register_widths(sys.trace());
  EXPECT_EQ(audit.writes_inspected, successes + swaps);
}

}  // namespace
}  // namespace llsc
