// Unit and property tests for util/bigint.h.
#include "util/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "util/rng.h"

namespace llsc {
namespace {

TEST(BigInt, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0x0");
  EXPECT_EQ(z.to_dec(), "0");
  EXPECT_EQ(z.low64(), 0u);
}

TEST(BigInt, FromU64) {
  BigInt v(0xDEADBEEFULL);
  EXPECT_FALSE(v.is_zero());
  EXPECT_EQ(v.low64(), 0xDEADBEEFULL);
  EXPECT_EQ(v.to_hex(), "0xdeadbeef");
  EXPECT_TRUE(v.fits64());
}

TEST(BigInt, Pow2) {
  EXPECT_EQ(BigInt::pow2(0), BigInt(1));
  EXPECT_EQ(BigInt::pow2(10), BigInt(1024));
  const BigInt big = BigInt::pow2(200);
  EXPECT_EQ(big.bit_length(), 201u);
  EXPECT_TRUE(big.bit(200));
  EXPECT_FALSE(big.bit(199));
  EXPECT_FALSE(big.fits64());
}

TEST(BigInt, Ones) {
  EXPECT_TRUE(BigInt::ones(0).is_zero());
  EXPECT_EQ(BigInt::ones(8), BigInt(255));
  EXPECT_EQ(BigInt::ones(64), BigInt(~std::uint64_t{0}));
  const BigInt o100 = BigInt::ones(100);
  EXPECT_EQ(o100.bit_length(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_TRUE(o100.bit(i));
  EXPECT_FALSE(o100.bit(100));
}

TEST(BigInt, AddCarriesAcrossLimbs) {
  BigInt a(~std::uint64_t{0});
  a += BigInt(1);
  EXPECT_EQ(a, BigInt::pow2(64));
}

TEST(BigInt, SubBorrowsAcrossLimbs) {
  BigInt a = BigInt::pow2(128);
  a -= BigInt(1);
  EXPECT_EQ(a, BigInt::ones(128));
}

TEST(BigInt, MulSmall) {
  EXPECT_EQ(BigInt(6) * BigInt(7), BigInt(42));
  EXPECT_TRUE((BigInt(0) * BigInt(7)).is_zero());
}

TEST(BigInt, MulLarge) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  const BigInt m(~std::uint64_t{0});
  BigInt expected = BigInt::pow2(128);
  expected -= BigInt::pow2(65);
  expected += BigInt(1);
  EXPECT_EQ(m * m, expected);
}

TEST(BigInt, ShiftRoundTrip) {
  BigInt v(0x123456789ABCDEFULL);
  const BigInt shifted = v << 100;
  EXPECT_EQ(shifted >> 100, v);
  EXPECT_TRUE((v >> 60).fits64());
  EXPECT_EQ(v >> 200, BigInt());
}

TEST(BigInt, TruncateDropsHighBits) {
  BigInt v = BigInt::ones(100);
  v.truncate(10);
  EXPECT_EQ(v, BigInt::ones(10));
  BigInt w(0xFFFF);
  w.truncate(8);
  EXPECT_EQ(w, BigInt(0xFF));
  BigInt untouched(42);
  untouched.truncate(64);
  EXPECT_EQ(untouched, BigInt(42));
}

TEST(BigInt, BitSetAndClear) {
  BigInt v;
  v.set_bit(77, true);
  EXPECT_TRUE(v.bit(77));
  EXPECT_EQ(v, BigInt::pow2(77));
  v.set_bit(77, false);
  EXPECT_TRUE(v.is_zero());
  v.set_bit(5, false);  // clearing an absent bit is a no-op
  EXPECT_TRUE(v.is_zero());
}

TEST(BigInt, Ordering) {
  EXPECT_LT(BigInt(1), BigInt(2));
  EXPECT_LT(BigInt(~std::uint64_t{0}), BigInt::pow2(64));
  EXPECT_GT(BigInt::pow2(128), BigInt::pow2(127));
  EXPECT_EQ(BigInt(5) <=> BigInt(5), std::strong_ordering::equal);
}

TEST(BigInt, HexRoundTrip) {
  const BigInt v = BigInt::pow2(130) + BigInt(0xABC);
  EXPECT_EQ(BigInt::from_hex(v.to_hex()), v);
  EXPECT_EQ(BigInt::from_hex("0xFF"), BigInt(255));
  EXPECT_EQ(BigInt::from_hex("ff"), BigInt(255));
  EXPECT_EQ(BigInt::from_hex(""), BigInt());
}

TEST(BigInt, DecRendering) {
  EXPECT_EQ(BigInt(1234567890123456789ULL).to_dec(), "1234567890123456789");
  // 2^64 = 18446744073709551616
  EXPECT_EQ(BigInt::pow2(64).to_dec(), "18446744073709551616");
}

TEST(BigInt, XorIsSelfInverse) {
  const BigInt a = BigInt::ones(100);
  const BigInt b = BigInt::pow2(77) + BigInt(12345);
  EXPECT_EQ((a ^ b) ^ b, a);
}

// Property: BigInt arithmetic on values < 2^32 agrees with u64 arithmetic.
class BigIntPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntPropertyTest, MatchesU64Reference) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t x = rng.next_below(1ULL << 32);
    const std::uint64_t y = rng.next_below(1ULL << 32);
    EXPECT_EQ((BigInt(x) + BigInt(y)).low64(), x + y);
    EXPECT_EQ((BigInt(x) * BigInt(y)).low64(), x * y);
    EXPECT_EQ((BigInt(x) & BigInt(y)).low64(), x & y);
    EXPECT_EQ((BigInt(x) | BigInt(y)).low64(), x | y);
    EXPECT_EQ((BigInt(x) ^ BigInt(y)).low64(), x ^ y);
    if (x >= y) {
      EXPECT_EQ((BigInt(x) - BigInt(y)).low64(), x - y);
    }
    EXPECT_EQ((BigInt(x) < BigInt(y)), x < y);
    BigInt t(x);
    t.truncate(16);
    EXPECT_EQ(t.low64(), x & 0xFFFF);
  }
}

TEST_P(BigIntPropertyTest, ShiftedArithmeticConsistent) {
  Rng rng(GetParam() ^ 0x1234);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = rng.next_below(1ULL << 32);
    const std::uint64_t y = rng.next_below(1ULL << 32);
    const std::size_t s = rng.next_below(300);
    // (x + y) << s == (x << s) + (y << s)
    EXPECT_EQ((BigInt(x) + BigInt(y)) << s,
              (BigInt(x) << s) + (BigInt(y) << s));
    // (x * y) << s == (x << s) * y
    EXPECT_EQ((BigInt(x) * BigInt(y)) << s, (BigInt(x) << s) * BigInt(y));
  }
}

TEST_P(BigIntPropertyTest, HashConsistentWithEquality) {
  Rng rng(GetParam() ^ 0x9999);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = rng.next_u64();
    const std::size_t s = rng.next_below(200);
    const BigInt a = BigInt(x) << s;
    const BigInt b = BigInt(x) << s;
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace llsc
