// Tests for the wakeup specification checker itself (wakeup/spec.h):
// each of the three conditions must be detected when violated.
#include "wakeup/spec.h"

#include <gtest/gtest.h>

#include "sched/scheduler.h"
#include "util/str.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

SimTask return_value_body(ProcCtx ctx, std::uint64_t v, int ops) {
  for (int i = 0; i < ops; ++i) (void)co_await ctx.validate(0);
  co_return Value::of_u64(v);
}

TEST(WakeupSpec, AllZerosViolatesCondition2) {
  System sys(3, [](ProcCtx ctx, ProcId, int) {
    return return_value_body(ctx, 0, 1);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1000).all_terminated);
  const WakeupCheckResult res = check_wakeup_run(sys);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.num_winners, 0);
  EXPECT_NE(res.violations.front().find("none returned 1"),
            std::string::npos);
}

TEST(WakeupSpec, NonBinaryResultViolatesCondition1) {
  System sys(2, [](ProcCtx ctx, ProcId i, int) {
    return return_value_body(ctx, i == 0 ? 7 : 1, 1);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1000).all_terminated);
  const WakeupCheckResult res = check_wakeup_run(sys);
  EXPECT_FALSE(res.ok);
}

TEST(WakeupSpec, NonTerminationViolatesCondition1) {
  System sys(2, flaky_wakeup(2));  // zero tosses: both spin forever
  RoundRobinScheduler sched;
  ASSERT_FALSE(sched.run(sys, 100).all_terminated);
  const WakeupCheckResult res = check_wakeup_run(sys);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.violations.front().find("did not terminate"),
            std::string::npos);
}

TEST(WakeupSpec, EarlyOneReturnViolatesCondition3) {
  // p0 returns 1 after a single step while p1 has not moved: run p0 solo
  // first via the sequential scheduler.
  System sys(2, cheating_wakeup(1));
  SequentialScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1000).all_terminated);
  const WakeupCheckResult res = check_wakeup_run(sys);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.violations.front().find("before the first 1-return"),
            std::string::npos);
}

TEST(WakeupSpec, SingleProcessTrivialWakeupOk) {
  // n = 1: the lone process takes a step and returns 1.
  System sys(1, tournament_wakeup());
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1000).all_terminated);
  const WakeupCheckResult res = check_wakeup_run(sys);
  EXPECT_TRUE(res.ok) << res.violations.front();
  EXPECT_EQ(res.num_winners, 1);
}

TEST(WakeupSpec, MultipleWinnersAreLegal) {
  // The spec requires >= 1 winner; several are fine as long as everyone
  // stepped before the first. Tournament can produce several winners under
  // round-robin (all finishers see the full root).
  const int n = 4;
  System sys(n, tournament_wakeup());
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1 << 20).all_terminated);
  const WakeupCheckResult res = check_wakeup_run(sys);
  EXPECT_TRUE(res.ok) << res.violations.front();
  EXPECT_GE(res.num_winners, 1);
}

TEST(WakeupSpec, RmwWakeupSolvesInOneOperation) {
  // The original FMRT setting: with read-modify-write, wakeup costs ONE
  // shared operation per process — the Ω(log n) bound is specific to the
  // LL/SC/VL/swap/move operation set.
  for (const int n : {1, 2, 5, 16, 64}) {
    System sys(n, rmw_wakeup());
    RandomScheduler sched(static_cast<std::uint64_t>(n));
    ASSERT_TRUE(sched.run(sys, 1 << 20).all_terminated) << "n=" << n;
    const WakeupCheckResult res = check_wakeup_run(sys);
    EXPECT_TRUE(res.ok) << res.violations.front();
    EXPECT_EQ(res.num_winners, 1) << "n=" << n;
    for (ProcId p = 0; p < n; ++p) {
      EXPECT_EQ(sys.process(p).shared_ops(), 1u);
    }
  }
}

TEST(UtilStr, LogHelpers) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(ceil_log4(1), 0u);
  EXPECT_EQ(ceil_log4(4), 1u);
  EXPECT_EQ(ceil_log4(5), 2u);
  EXPECT_EQ(ceil_log4(256), 4u);
  EXPECT_DOUBLE_EQ(log4(16.0), 2.0);
  EXPECT_DOUBLE_EQ(log4(4.0), 1.0);
}

TEST(UtilStr, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

}  // namespace
}  // namespace llsc
