// Tests for sched/scheduler.h: the benign schedulers driving complete runs.
#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include "wakeup/algorithms.h"
#include "wakeup/spec.h"

namespace llsc {
namespace {

SimTask incrementer(ProcCtx ctx, int rounds) {
  std::uint64_t successes = 0;
  for (int i = 0; i < rounds; ++i) {
    (void)co_await ctx.ll(0);
    const ScResult sc = co_await ctx.sc(0, Value::of_u64(ctx.id() + 1));
    if (sc.ok) ++successes;
  }
  co_return Value::of_u64(successes);
}

ProcBody incrementer_body(int rounds) {
  return [rounds](ProcCtx ctx, ProcId, int) {
    return incrementer(ctx, rounds);
  };
}

TEST(RoundRobinScheduler, CompletesAndCounts) {
  System sys(4, incrementer_body(5));
  RoundRobinScheduler sched;
  const RunOutcome out = sched.run(sys, 1 << 20);
  EXPECT_TRUE(out.all_terminated);
  EXPECT_EQ(out.max_shared_ops, 10u);  // 5 LL + 5 SC each
  // 10 shared ops per process plus one "start" step each (running the
  // coroutine to its first suspension counts as a scheduling step).
  EXPECT_EQ(out.steps_executed, 4u * 11u);
}

TEST(SequentialScheduler, SoloRunsAllSucceed) {
  System sys(4, incrementer_body(5));
  SequentialScheduler sched;
  const RunOutcome out = sched.run(sys, 1 << 20);
  EXPECT_TRUE(out.all_terminated);
  // Run solo, every SC succeeds.
  for (ProcId p = 0; p < 4; ++p) {
    EXPECT_EQ(sys.process(p).result().as_u64(), 5u);
  }
}

TEST(RoundRobinScheduler, InterleavedScsMostlyFail) {
  System sys(4, incrementer_body(5));
  RoundRobinScheduler sched;
  sched.run(sys, 1 << 20);
  // All four processes LL, then all four SC: only p0's SC succeeds each
  // round (id order; success clears the Pset).
  EXPECT_EQ(sys.process(0).result().as_u64(), 5u);
  for (ProcId p = 1; p < 4; ++p) {
    EXPECT_EQ(sys.process(p).result().as_u64(), 0u);
  }
}

TEST(RandomScheduler, DeterministicPerSeed) {
  const auto run_with = [](std::uint64_t seed) {
    System sys(4, incrementer_body(5));
    RandomScheduler sched(seed);
    sched.run(sys, 1 << 20);
    std::vector<std::uint64_t> results;
    for (ProcId p = 0; p < 4; ++p) {
      results.push_back(sys.process(p).result().as_u64());
    }
    return results;
  };
  EXPECT_EQ(run_with(5), run_with(5));
}

TEST(ScriptedScheduler, FollowsScriptThenFallsBack) {
  System sys(2, incrementer_body(1));
  // p1 does LL and SC alone first, then p0 runs via fallback.
  ScriptedScheduler sched({1, 1});
  const RunOutcome out = sched.run(sys, 1 << 20);
  EXPECT_TRUE(out.all_terminated);
  EXPECT_EQ(sys.process(1).result().as_u64(), 1u);
  EXPECT_EQ(sys.process(0).result().as_u64(), 1u);
}

TEST(Scheduler, StepCapStopsNonTerminatingRun) {
  // counter_wakeup retries forever if the cap interrupts it mid-flight;
  // use a tiny cap to exercise the cap path.
  System sys(2, counter_wakeup());
  RoundRobinScheduler sched;
  const RunOutcome out = sched.run(sys, 3);
  EXPECT_FALSE(out.all_terminated);
  EXPECT_EQ(out.steps_executed, 3u);
}

class SchedulerWakeupTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SchedulerWakeupTest, TournamentSatisfiesSpecUnderAllSchedulers) {
  const int n = std::get<0>(GetParam());
  const int which = std::get<1>(GetParam());
  System sys(n, tournament_wakeup());
  std::unique_ptr<Scheduler> sched;
  switch (which) {
    case 0:
      sched = std::make_unique<RoundRobinScheduler>();
      break;
    case 1:
      sched = std::make_unique<SequentialScheduler>();
      break;
    default:
      sched = std::make_unique<RandomScheduler>(42 + n);
      break;
  }
  const RunOutcome out = sched->run(sys, 1 << 22);
  ASSERT_TRUE(out.all_terminated);
  const WakeupCheckResult check = check_wakeup_run(sys);
  EXPECT_TRUE(check.ok) << check.violations.front();
  EXPECT_GE(check.num_winners, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerWakeupTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16, 33),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace llsc
