// Tests for the Theorem 6.2 object reductions: every reduction solves
// wakeup through an obliviously-implemented object, under both generic
// schedulers and the Fig. 2 adversary, and the forced complexity respects
// (1/k)·log_4 n.
#include "wakeup/reductions.h"

#include <gtest/gtest.h>

#include "core/adversary.h"
#include "core/lower_bound.h"
#include "sched/scheduler.h"
#include "universal/group_update.h"
#include "universal/single_register.h"
#include "util/str.h"
#include "wakeup/spec.h"

namespace llsc {
namespace {

TEST(Reductions, CatalogHasTenEntries) {
  const auto& all = all_reductions();
  ASSERT_EQ(all.size(), 10u);  // Theorem 6.2's eight + fetch&xor + pqueue
  for (const ObjectReduction& r : all) {
    EXPECT_GE(r.ops_per_process, 1);
    EXPECT_LE(r.ops_per_process, 2);
    // Factories and bodies must exist for every catalog entry.
    EXPECT_NE(reduction_object_factory(r.name, 4), nullptr);
  }
}

class ReductionSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int, bool>> {};

TEST_P(ReductionSweep, SolvesWakeupThroughObliviousConstruction) {
  const std::string& name = std::get<0>(GetParam());
  const int n = std::get<1>(GetParam());
  const bool group = std::get<2>(GetParam());

  ObjectFactory factory = reduction_object_factory(name, n);
  std::unique_ptr<UniversalConstruction> uc;
  if (group) {
    uc = std::make_unique<GroupUpdateUC>(n, std::move(factory));
  } else {
    uc = std::make_unique<SingleRegisterUC>(n, std::move(factory));
  }
  System sys(n, reduction_wakeup_body(name, *uc));
  RoundRobinScheduler sched;
  const RunOutcome out = sched.run(sys, 1 << 24);
  ASSERT_TRUE(out.all_terminated) << name << " n=" << n;
  const WakeupCheckResult check = check_wakeup_run(sys);
  EXPECT_TRUE(check.ok) << name << ": " << check.violations.front();
  EXPECT_GE(check.num_winners, 1) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReductionSweep,
    ::testing::Combine(
        ::testing::Values("fetch&increment", "fetch&and", "fetch&or",
                          "fetch&xor", "fetch&complement", "fetch&multiply",
                          "queue", "stack", "priority-queue",
                          "read+increment"),
        ::testing::Values(1, 2, 3, 6, 9), ::testing::Bool()));

class ReductionAdversarySweep
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ReductionAdversarySweep, AdversaryForcesTheCorollaryBound) {
  const std::string name = GetParam();
  const int n = 16;
  int k = 0;
  for (const ObjectReduction& r : all_reductions()) {
    if (r.name == name) k = r.ops_per_process;
  }
  ASSERT_GT(k, 0);

  GroupUpdateUC uc(n, reduction_object_factory(name, n));
  System sys(n, reduction_wakeup_body(name, uc));
  const RunLog log = run_adversary(sys);
  ASSERT_TRUE(log.all_terminated) << name;
  const WakeupCheckResult check = check_wakeup_run(sys);
  ASSERT_TRUE(check.ok) << name << ": " << check.violations.front();

  // Corollary 6.1: the winner performs >= (1/k) log_4 n operations on the
  // implementation's shared memory.
  std::uint64_t winner_ops = ~std::uint64_t{0};
  for (ProcId p = 0; p < n; ++p) {
    const Process& proc = sys.process(p);
    if (proc.done() && proc.result().as_u64() == 1) {
      winner_ops = std::min(winner_ops, proc.shared_ops());
    }
  }
  ASSERT_NE(winner_ops, ~std::uint64_t{0});
  EXPECT_GE(static_cast<double>(winner_ops), log4(n) / k) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllReductions, ReductionAdversarySweep,
    ::testing::Values("fetch&increment", "fetch&and", "fetch&or",
                      "fetch&xor", "fetch&complement", "fetch&multiply",
                      "queue", "stack", "priority-queue",
                      "read+increment"));

TEST(Reductions, ExactlyOneWinnerForSingleUseReductions) {
  // For the k=1 reductions each process applies one operation, and only
  // the process observing the "last" response can return 1.
  for (const char* name : {"fetch&increment", "queue", "stack"}) {
    const int n = 7;
    GroupUpdateUC uc(n, reduction_object_factory(name, n));
    System sys(n, reduction_wakeup_body(name, uc));
    RandomScheduler sched(1234);
    ASSERT_TRUE(sched.run(sys, 1 << 24).all_terminated);
    const WakeupCheckResult check = check_wakeup_run(sys);
    EXPECT_TRUE(check.ok) << name;
    EXPECT_EQ(check.num_winners, 1) << name;
  }
}

TEST(ReductionsDeath, UnknownReductionRejected) {
  EXPECT_DEATH(reduction_object_factory("no-such-type", 4),
               "unknown reduction");
}

}  // namespace
}  // namespace llsc
