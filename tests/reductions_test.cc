// Tests for the Theorem 6.2 object reductions: every reduction solves
// wakeup through an obliviously-implemented object, under both generic
// schedulers and the Fig. 2 adversary, and the forced complexity respects
// (1/k)·log_4 n.
#include "wakeup/reductions.h"

#include <gtest/gtest.h>

#include "core/adversary.h"
#include "core/lower_bound.h"
#include "hw/hw_executor.h"
#include "objects/leader.h"
#include "objects/tas.h"
#include "runtime/toss.h"
#include "sched/scheduler.h"
#include "universal/group_update.h"
#include "universal/single_register.h"
#include "util/str.h"
#include "wakeup/spec.h"

namespace llsc {
namespace {

TEST(Reductions, CatalogHasTenEntries) {
  const auto& all = all_reductions();
  ASSERT_EQ(all.size(), 10u);  // Theorem 6.2's eight + fetch&xor + pqueue
  for (const ObjectReduction& r : all) {
    EXPECT_GE(r.ops_per_process, 1);
    EXPECT_LE(r.ops_per_process, 2);
    // Factories and bodies must exist for every catalog entry.
    EXPECT_NE(reduction_object_factory(r.name, 4), nullptr);
  }
}

class ReductionSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int, bool>> {};

TEST_P(ReductionSweep, SolvesWakeupThroughObliviousConstruction) {
  const std::string& name = std::get<0>(GetParam());
  const int n = std::get<1>(GetParam());
  const bool group = std::get<2>(GetParam());

  ObjectFactory factory = reduction_object_factory(name, n);
  std::unique_ptr<UniversalConstruction> uc;
  if (group) {
    uc = std::make_unique<GroupUpdateUC>(n, std::move(factory));
  } else {
    uc = std::make_unique<SingleRegisterUC>(n, std::move(factory));
  }
  System sys(n, reduction_wakeup_body(name, *uc));
  RoundRobinScheduler sched;
  const RunOutcome out = sched.run(sys, 1 << 24);
  ASSERT_TRUE(out.all_terminated) << name << " n=" << n;
  const WakeupCheckResult check = check_wakeup_run(sys);
  EXPECT_TRUE(check.ok) << name << ": " << check.violations.front();
  EXPECT_GE(check.num_winners, 1) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReductionSweep,
    ::testing::Combine(
        ::testing::Values("fetch&increment", "fetch&and", "fetch&or",
                          "fetch&xor", "fetch&complement", "fetch&multiply",
                          "queue", "stack", "priority-queue",
                          "read+increment"),
        ::testing::Values(1, 2, 3, 6, 9), ::testing::Bool()));

class ReductionAdversarySweep
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ReductionAdversarySweep, AdversaryForcesTheCorollaryBound) {
  const std::string name = GetParam();
  const int n = 16;
  int k = 0;
  for (const ObjectReduction& r : all_reductions()) {
    if (r.name == name) k = r.ops_per_process;
  }
  ASSERT_GT(k, 0);

  GroupUpdateUC uc(n, reduction_object_factory(name, n));
  System sys(n, reduction_wakeup_body(name, uc));
  const RunLog log = run_adversary(sys);
  ASSERT_TRUE(log.all_terminated) << name;
  const WakeupCheckResult check = check_wakeup_run(sys);
  ASSERT_TRUE(check.ok) << name << ": " << check.violations.front();

  // Corollary 6.1: the winner performs >= (1/k) log_4 n operations on the
  // implementation's shared memory.
  std::uint64_t winner_ops = ~std::uint64_t{0};
  for (ProcId p = 0; p < n; ++p) {
    const Process& proc = sys.process(p);
    if (proc.done() && proc.result().as_u64() == 1) {
      winner_ops = std::min(winner_ops, proc.shared_ops());
    }
  }
  ASSERT_NE(winner_ops, ~std::uint64_t{0});
  EXPECT_GE(static_cast<double>(winner_ops), log4(n) / k) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllReductions, ReductionAdversarySweep,
    ::testing::Values("fetch&increment", "fetch&and", "fetch&or",
                      "fetch&xor", "fetch&complement", "fetch&multiply",
                      "queue", "stack", "priority-queue",
                      "read+increment"));

TEST(Reductions, ExactlyOneWinnerForSingleUseReductions) {
  // For the k=1 reductions each process applies one operation, and only
  // the process observing the "last" response can return 1.
  for (const char* name : {"fetch&increment", "queue", "stack"}) {
    const int n = 7;
    GroupUpdateUC uc(n, reduction_object_factory(name, n));
    System sys(n, reduction_wakeup_body(name, uc));
    RandomScheduler sched(1234);
    ASSERT_TRUE(sched.run(sys, 1 << 24).all_terminated);
    const WakeupCheckResult check = check_wakeup_run(sys);
    EXPECT_TRUE(check.ok) << name;
    EXPECT_EQ(check.num_winners, 1) << name;
  }
}

TEST(ReductionsDeath, UnknownReductionRejected) {
  EXPECT_DEATH(reduction_object_factory("no-such-type", 4),
               "unknown reduction");
}

// --- problem reductions: wakeup ⇄ TAS ⇄ leader ---------------------------

int claimed_glue_bound(const std::string& name) {
  for (const ProblemReduction& r : problem_reductions()) {
    if (r.name == name) return r.glue_ops_bound;
  }
  return -1;
}

// Check the composed problem's own specification on a finished System.
void check_composed_spec(const std::string& name, const System& sys, int n,
                         const std::string& what) {
  if (name == "tas_from_leader") {
    const TasCheckResult res = check_tas_run(sys);
    EXPECT_TRUE(res.ok) << what << ": " << res.summary();
    EXPECT_EQ(res.num_winners, 1) << what;
    return;
  }
  if (name == "leader_from_tas") {
    const LeaderCheckResult res = check_leader_run(sys);
    EXPECT_TRUE(res.ok) << what << ": " << res.summary();
    EXPECT_EQ(res.num_reporters, n) << what;
    return;
  }
  if (name == "tas_from_wakeup") {
    // The claim register lives at base + 1, outside any TAS layout, so
    // count winners directly: exactly one process may hold the claim.
    int winners = 0;
    for (ProcId p = 0; p < n; ++p) {
      const Value& r = sys.process(p).result();
      ASSERT_TRUE(r.holds_u64()) << what << " p=" << p;
      ASSERT_LE(r.as_u64(), 1u) << what << " p=" << p;
      winners += static_cast<int>(r.as_u64());
    }
    EXPECT_EQ(winners, 1) << what;
    return;
  }
  ASSERT_EQ(name, "single_winner_wakeup_from_tas");
  // Still a correct wakeup algorithm — every base condition holds — but
  // refined to EXACTLY one winner by the TAS stage.
  const WakeupCheckResult res = check_wakeup_run(sys);
  EXPECT_TRUE(res.ok) << what << ": "
                      << (res.violations.empty() ? "" : res.violations[0]);
  EXPECT_EQ(res.num_winners, 1) << what;
}

TEST(ProblemReductions, CatalogNamesAndBounds) {
  const auto& all = problem_reductions();
  ASSERT_EQ(all.size(), 4u);
  for (const ProblemReduction& r : all) {
    EXPECT_GE(r.glue_ops_bound, 0);
    EXPECT_LE(r.glue_ops_bound, 4);
    // A body must exist for every catalog entry.
    EXPECT_NE(problem_reduction_body(r.name), nullptr) << r.name;
  }
}

// The heart of the reduction argument: the glue is a CONSTANT number of
// shared ops per process — measured, not assumed — so any lower bound on
// the underlying problem transfers to the composed one (and any upper
// bound transfers the other way) up to that constant.
TEST(ProblemReductions, GlueStaysWithinClaimedConstantOnSimulator) {
  for (const ProblemReduction& r : problem_reductions()) {
    for (const int n : {1, 2, 3, 5, 9}) {
      for (const std::uint64_t seed : {11ull, 42ull}) {
        std::vector<std::uint64_t> glue(static_cast<std::size_t>(n), 0);
        const ProcBody body = problem_reduction_body(r.name, 0, &glue);
        auto tosses = std::make_shared<SeededTossAssignment>(seed);
        System sys(n, body, tosses);
        RandomScheduler sched(seed ^ 0x6E0Eu);
        const std::string what = r.name + " n=" + std::to_string(n) +
                                 " seed=" + std::to_string(seed);
        ASSERT_TRUE(sched.run(sys, 1 << 24).all_terminated) << what;
        for (ProcId p = 0; p < n; ++p) {
          EXPECT_LE(glue[static_cast<std::size_t>(p)],
                    static_cast<std::uint64_t>(r.glue_ops_bound))
              << what << " p=" << p;
        }
        check_composed_spec(r.name, sys, n, what);
      }
    }
  }
}

// Same measurement on free-running threads: the glue bound is a property
// of the protocol, not of the simulator's schedule. (Each process writes
// only its own glue slot, so the instrumentation itself is race-free.)
TEST(ProblemReductions, GlueStaysWithinClaimedConstantOnHw) {
  for (const ProblemReduction& r : problem_reductions()) {
    for (const int n : {2, 5, 8}) {
      for (std::uint64_t s = 0; s < 3; ++s) {
        std::vector<std::uint64_t> glue(static_cast<std::size_t>(n), 0);
        const ProcBody body = problem_reduction_body(r.name, 0, &glue);
        HwRunOptions options;
        options.seed = 0x61AE + s;
        HwExecutor exec(options);
        const HwRunResult run = exec.run(n, body);
        const std::string what = r.name + " n=" + std::to_string(n) +
                                 " s=" + std::to_string(s) + " [hw]";
        ASSERT_EQ(run.status, RunStatus::kClean) << what;
        for (ProcId p = 0; p < n; ++p) {
          EXPECT_LE(glue[static_cast<std::size_t>(p)],
                    static_cast<std::uint64_t>(r.glue_ops_bound))
              << what << " p=" << p;
        }
      }
    }
  }
}

// The composition chain end-to-end: TAS built from wakeup costs at most
// the wakeup solver's ops plus the claimed constant — the Theorem 6.1
// transfer shape (a sub-log-n TAS would contradict the wakeup bound).
TEST(ProblemReductions, TasFromWakeupCostsWakeupPlusAConstant) {
  const int n = 8;
  for (const std::uint64_t seed : {3ull, 7ull, 19ull}) {
    std::vector<std::uint64_t> glue(static_cast<std::size_t>(n), 0);
    const ProcBody body = problem_reduction_body("tas_from_wakeup", 0, &glue);
    auto tosses = std::make_shared<SeededTossAssignment>(seed);
    System sys(n, body, tosses);
    RoundRobinScheduler sched;
    ASSERT_TRUE(sched.run(sys, 1 << 24).all_terminated);
    for (ProcId p = 0; p < n; ++p) {
      const std::uint64_t total = sys.process(p).shared_ops();
      const std::uint64_t g = glue[static_cast<std::size_t>(p)];
      EXPECT_LE(g, static_cast<std::uint64_t>(claimed_glue_bound(
                       "tas_from_wakeup")));
      // Everything that is not glue was spent inside the wakeup solver.
      EXPECT_GE(total, g);
    }
  }
}

TEST(ReductionsDeath, UnknownProblemReductionRejected) {
  EXPECT_DEATH(problem_reduction_body("no-such-reduction"),
               "unknown problem reduction");
}

}  // namespace
}  // namespace llsc
