// Backoff policies: exact window sequences for fixed and adaptive
// policies (including the non-power-of-two-cap clamp regression), the
// park/unpark tier driven through a stubbed Waiter, and counter
// accounting.
#include "hw/backoff.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "hw/hw_memory.h"
#include "memory/rmw.h"

namespace llsc {
namespace {

// Records every wait/wake instead of blocking, so the parking tier can be
// driven deterministically from one thread.
class StubWaiter final : public Waiter {
 public:
  void wait(std::atomic<std::uint32_t>& word, std::uint32_t expected) override {
    ++waits;
    last_expected = expected;
    last_word = &word;
  }
  void wake_all(std::atomic<std::uint32_t>& word) override {
    ++wakes;
    last_word = &word;
  }

  int waits = 0;
  int wakes = 0;
  std::uint32_t last_expected = 0;
  std::atomic<std::uint32_t>* last_word = nullptr;
};

BackoffOptions spin_only(BackoffPolicy policy, std::uint32_t min_spins,
                         std::uint32_t max_spins) {
  BackoffOptions o;
  o.policy = policy;
  o.min_spins = min_spins;
  o.max_spins = max_spins;
  // Keep every wait in the spin tier so the test never yields or parks.
  o.yield_threshold = max_spins + 1;
  return o;
}

// Regression for the window-overshoot bug: the pre-fix update
// (`if (window < max) window *= 2`) walks 4, 8, 16, 32 for a cap of 24 —
// the window exceeds the configured maximum by up to 2x. The clamped
// update must walk 4, 8, 16, 24, 24, ...
TEST(HwBackoffTest, FixedWindowNeverOvershootsNonPowerOfTwoCap) {
  Backoff b(spin_only(BackoffPolicy::kFixed, 4, 24));
  b.begin_op();
  std::vector<std::uint32_t> seen;
  for (int i = 0; i < 5; ++i) {
    b.on_failure();
    seen.push_back(b.window());
  }
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{8, 16, 24, 24, 24}));
}

TEST(HwBackoffTest, FixedWindowResetsEveryOperation) {
  Backoff b(spin_only(BackoffPolicy::kFixed, 4, 64));
  b.begin_op();
  for (int i = 0; i < 4; ++i) b.on_failure();
  EXPECT_EQ(b.window(), 64u);
  b.on_success();
  b.begin_op();
  EXPECT_EQ(b.window(), 4u);  // fixed: no memory of past contention
}

TEST(HwBackoffTest, AdaptiveWindowPersistsAcrossOperations) {
  Backoff b(spin_only(BackoffPolicy::kAdaptive, 4, 1024));
  b.begin_op();
  for (int i = 0; i < 6; ++i) b.on_failure();  // 8,16,...,256
  EXPECT_EQ(b.window(), 256u);
  b.on_success();  // additive decrease by the default step (32)
  b.begin_op();
  EXPECT_EQ(b.window(), 224u);  // carried into the next operation
}

TEST(HwBackoffTest, AdaptiveMultiplicativeIncreaseAdditiveDecrease) {
  BackoffOptions o = spin_only(BackoffPolicy::kAdaptive, 4, 100);
  o.decrease_step = 10;
  Backoff b(o);
  b.begin_op();
  // Failure streak: x2 clamped at the (non-power-of-two) cap.
  std::vector<std::uint32_t> up;
  for (int i = 0; i < 6; ++i) {
    b.on_failure();
    up.push_back(b.window());
  }
  EXPECT_EQ(up, (std::vector<std::uint32_t>{8, 16, 32, 64, 100, 100}));
  // Success streak: -10 per success, clamped at the floor.
  std::vector<std::uint32_t> down;
  for (int i = 0; i < 11; ++i) {
    b.on_success();
    down.push_back(b.window());
  }
  EXPECT_EQ(down, (std::vector<std::uint32_t>{90, 80, 70, 60, 50, 40, 30, 20,
                                              10, 4, 4}));
}

TEST(HwBackoffTest, ParkingEngagesOnlyAfterSaturatedStreak) {
  StubWaiter waiter;
  BackoffOptions o = spin_only(BackoffPolicy::kAdaptiveParking, 4, 16);
  o.park_threshold = 3;
  o.waiter = &waiter;
  Backoff b(o);
  ParkSpot spot;
  b.begin_op();
  // Window reaches the 16 cap after 2 failures; the saturation streak
  // then has to exceed park_threshold before the first park.
  for (int i = 0; i < 6; ++i) b.on_failure(&spot);
  EXPECT_EQ(waiter.waits, 1);
  EXPECT_EQ(b.stats().parks, 1u);
  EXPECT_EQ(waiter.last_word, &spot.seq);
  // Once saturated, every further failure parks...
  b.on_failure(&spot);
  EXPECT_EQ(waiter.waits, 2);
  // ...until a success resets the streak.
  b.on_success();
  b.on_failure(&spot);
  EXPECT_EQ(waiter.waits, 2);
  // The waiters count must be balanced after every park.
  EXPECT_EQ(spot.waiters.load(), 0u);
}

// The lost-wakeup window (the service-mode latency cliff): the parker
// fails its CAS seeing `observed`, then a writer installs a new value
// and — correctly, per the writer protocol — skips the seq bump and wake
// because `waiters` is still 0, and only then does the parker park. The
// writer runs on its own thread and completes (join) before the park, so
// this is exactly the interleaving the old ordering lost: it would call
// Waiter::wait and sleep out the full timeout. The fixed park re-checks
// the word after registering in `waiters` and must skip the wait.
TEST(HwBackoffTest, ParkRechecksWordSoAWakelessWriterIsNeverMissed) {
  StubWaiter waiter;  // records waits: a recorded wait IS the lost wakeup
  BackoffOptions o = spin_only(BackoffPolicy::kAdaptiveParking, 4, 4);
  o.park_threshold = 0;  // window starts saturated: first failure parks
  o.waiter = &waiter;
  Backoff b(o);
  ParkSpot spot;
  std::atomic<std::uint64_t> word{7};
  const std::uint64_t observed =
      word.load(std::memory_order_seq_cst);  // the failed CAS's snapshot
  b.begin_op();
  std::thread writer([&] {
    word.store(8, std::memory_order_seq_cst);  // install a new value
    // Writer-side wake protocol (RegisterStorage::wake_waiters): no
    // registered waiters, so no seq bump and no wake — legal, and the
    // half of the race the parker's re-check exists to cover.
    if (spot.waiters.load(std::memory_order_seq_cst) != 0) {
      spot.seq.fetch_add(1, std::memory_order_seq_cst);
      waiter.wake_all(spot.seq);
    }
  });
  writer.join();  // the write and skipped wake land before the park
  b.on_failure(&spot, &word, observed);
  EXPECT_EQ(waiter.waits, 0);  // old ordering: 1 (slept on a stale word)
  EXPECT_EQ(b.stats().parks, 1u);
  EXPECT_EQ(b.stats().park_skips, 1u);
  EXPECT_EQ(spot.waiters.load(), 0u);  // balanced on the skip path too
}

// The complement: when the word has NOT moved, the re-check must not turn
// parking into a spin loop — the parker registers and waits as before.
TEST(HwBackoffTest, ParkStillWaitsWhenWordIsUnchanged) {
  StubWaiter waiter;
  BackoffOptions o = spin_only(BackoffPolicy::kAdaptiveParking, 4, 4);
  o.park_threshold = 0;
  o.waiter = &waiter;
  Backoff b(o);
  ParkSpot spot;
  std::atomic<std::uint64_t> word{7};
  b.begin_op();
  b.on_failure(&spot, &word, word.load());
  EXPECT_EQ(waiter.waits, 1);
  EXPECT_EQ(b.stats().parks, 1u);
  EXPECT_EQ(b.stats().park_skips, 0u);
  EXPECT_EQ(spot.waiters.load(), 0u);
}

TEST(HwBackoffTest, ParkingNeverEngagesWithoutASpot) {
  StubWaiter waiter;
  BackoffOptions o = spin_only(BackoffPolicy::kAdaptiveParking, 4, 8);
  o.park_threshold = 0;
  o.waiter = &waiter;
  Backoff b(o);
  b.begin_op();
  for (int i = 0; i < 8; ++i) b.on_failure(nullptr);
  EXPECT_EQ(waiter.waits, 0);
  EXPECT_EQ(b.stats().parks, 0u);
}

TEST(HwBackoffTest, FixedAndAdaptivePoliciesNeverPark) {
  StubWaiter waiter;
  ParkSpot spot;
  for (const BackoffPolicy policy :
       {BackoffPolicy::kFixed, BackoffPolicy::kAdaptive}) {
    BackoffOptions o = spin_only(policy, 4, 8);
    o.park_threshold = 0;
    o.waiter = &waiter;
    Backoff b(o);
    b.begin_op();
    for (int i = 0; i < 10; ++i) b.on_failure(&spot);
    EXPECT_EQ(b.stats().parks, 0u) << to_string(policy);
  }
  EXPECT_EQ(waiter.waits, 0);
}

TEST(HwBackoffTest, StatsCountEveryTierAndFailureRate) {
  StubWaiter waiter;
  BackoffOptions o;
  o.policy = BackoffPolicy::kAdaptiveParking;
  o.min_spins = 4;
  o.max_spins = 32;
  o.yield_threshold = 16;  // windows 16/32 yield instead of spinning
  o.park_threshold = 2;
  o.waiter = &waiter;
  Backoff b(o);
  ParkSpot spot;
  b.begin_op();
  // Windows walked: 4, 8 (spin tier), 16 (yield), then saturated at 32 —
  // the first two saturated failures still yield (streak 1, 2 not above
  // park_threshold = 2), the next two park.
  for (int i = 0; i < 7; ++i) b.on_failure(&spot);
  const BackoffStats& s = b.stats();
  EXPECT_EQ(s.cas_failures, 7u);
  EXPECT_EQ(s.spin_pauses, 2u);
  EXPECT_EQ(s.yields, 3u);
  EXPECT_EQ(s.parks, 2u);
  b.on_success();
  EXPECT_EQ(b.stats().cas_successes, 1u);
  EXPECT_DOUBLE_EQ(b.stats().failure_rate(), 7.0 / 8.0);

  Backoff idle{BackoffOptions{}};
  EXPECT_DOUBLE_EQ(idle.stats().failure_rate(), 0.0);
}

// Degenerate option values clamp rather than trap.
TEST(HwBackoffTest, DegenerateOptionsAreClamped) {
  BackoffOptions o = spin_only(BackoffPolicy::kFixed, 0, 0);
  Backoff b(o);
  b.begin_op();
  b.on_failure();
  EXPECT_GE(b.window(), 1u);
  EXPECT_LE(b.window(), 1u);
}

// End-to-end through HwMemory: a contended rmw loop with the parking
// policy and a stubbed waiter records parks on the loser and wakes from
// the winner. Single-threaded here — contention is simulated by the stub
// never blocking — so the assertion is about the plumbing (options reach
// the per-thread Backoff, stats aggregate, wake fires when a waiter is
// registered), not about scheduling.
TEST(HwBackoffTest, HwMemoryAggregatesStatsAndWakesRegisteredWaiters) {
  StubWaiter waiter;
  BackoffOptions o;
  o.policy = BackoffPolicy::kAdaptiveParking;
  o.waiter = &waiter;
  HwMemory mem(2, 2, o);
  EXPECT_EQ(mem.backoff_stats().policy, BackoffPolicy::kAdaptiveParking);
  // Uncontended installs: successes accumulate, no failures, no wakes
  // (nobody is registered in any ParkSpot).
  for (int i = 0; i < 10; ++i) {
    (void)mem.swap(0, 0, Value::of_u64(static_cast<std::uint64_t>(i)));
  }
  const auto inc = make_rmw("inc", [](const Value& v) {
    return Value::of_u64(v.is_nil() ? 1 : v.as_u64() + 1);
  });
  (void)mem.rmw(1, 0, *inc);
  HwBackoffStats s = mem.backoff_stats();
  EXPECT_EQ(s.cas_successes, 11u);
  EXPECT_EQ(s.cas_failures, 0u);
  EXPECT_EQ(s.parks, 0u);
  EXPECT_EQ(s.wakes, 0u);
  EXPECT_EQ(waiter.wakes, 0);
  EXPECT_DOUBLE_EQ(s.failure_rate(), 0.0);
}

}  // namespace
}  // namespace llsc
