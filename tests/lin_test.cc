// Tests for the linearizability checker and history recorder: known-good
// and known-bad hand histories, then real histories recorded through both
// universal constructions under adversarial interleavings.
#include <gtest/gtest.h>

#include "lin/checker.h"
#include "lin/history.h"
#include "objects/arith.h"
#include "objects/basic.h"
#include "objects/containers.h"
#include "sched/scheduler.h"
#include "universal/group_update.h"
#include "universal/single_register.h"

namespace llsc {
namespace {

HistOp op(ProcId p, std::string name, Value arg, Value resp,
          std::uint64_t inv, std::uint64_t rsp) {
  HistOp h;
  h.proc = p;
  h.op = ObjOp{std::move(name), std::move(arg)};
  h.response = std::move(resp);
  h.inv_time = inv;
  h.resp_time = rsp;
  return h;
}

ObjectFactory counter_factory() {
  return [] { return std::make_unique<FetchAddObject>(64, 0); };
}

TEST(LinChecker, EmptyHistoryIsLinearizable) {
  const LinResult r = check_linearizability({}, counter_factory());
  EXPECT_TRUE(r.linearizable);
}

TEST(LinChecker, SequentialHistoryLinearizable) {
  History h;
  h.ops.push_back(op(0, "fetch&increment", {}, Value::of_u64(0), 1, 2));
  h.ops.push_back(op(0, "fetch&increment", {}, Value::of_u64(1), 3, 4));
  const LinResult r = check_linearizability(h, counter_factory());
  EXPECT_TRUE(r.linearizable);
  EXPECT_EQ(r.witness, (std::vector<std::size_t>{0, 1}));
}

TEST(LinChecker, ConcurrentOverlapEitherOrderAccepted) {
  // Two concurrent increments: responses 1 and 0 — legal (the one that
  // returned 0 linearizes first even though it responded later).
  History h;
  h.ops.push_back(op(0, "fetch&increment", {}, Value::of_u64(1), 1, 10));
  h.ops.push_back(op(1, "fetch&increment", {}, Value::of_u64(0), 2, 11));
  const LinResult r = check_linearizability(h, counter_factory());
  EXPECT_TRUE(r.linearizable);
  EXPECT_EQ(r.witness, (std::vector<std::size_t>{1, 0}));
}

TEST(LinChecker, RealTimeOrderEnforced) {
  // p0's op completed strictly before p1's began, yet p0 saw 1 and p1 saw
  // 0 — NOT linearizable.
  History h;
  h.ops.push_back(op(0, "fetch&increment", {}, Value::of_u64(1), 1, 2));
  h.ops.push_back(op(1, "fetch&increment", {}, Value::of_u64(0), 3, 4));
  const LinResult r = check_linearizability(h, counter_factory());
  EXPECT_FALSE(r.linearizable);
}

TEST(LinChecker, DuplicateResponsesRejected) {
  // Two increments both returning 0: impossible.
  History h;
  h.ops.push_back(op(0, "fetch&increment", {}, Value::of_u64(0), 1, 10));
  h.ops.push_back(op(1, "fetch&increment", {}, Value::of_u64(0), 2, 11));
  EXPECT_FALSE(check_linearizability(h, counter_factory()).linearizable);
}

TEST(LinChecker, QueueHistory) {
  const auto queue_factory = [] {
    return std::make_unique<QueueObject>();
  };
  History good;
  good.ops.push_back(op(0, "enqueue", Value::of_u64(1), {}, 1, 4));
  good.ops.push_back(op(1, "enqueue", Value::of_u64(2), {}, 2, 5));
  good.ops.push_back(op(0, "dequeue", {}, Value::of_u64(2), 6, 7));
  good.ops.push_back(op(1, "dequeue", {}, Value::of_u64(1), 8, 9));
  // Legal: concurrent enqueues may linearize 2 before 1.
  EXPECT_TRUE(check_linearizability(good, queue_factory).linearizable);

  History bad = good;
  // Same dequeue twice: value 2 dequeued by both.
  bad.ops[3] = op(1, "dequeue", {}, Value::of_u64(2), 8, 9);
  EXPECT_FALSE(check_linearizability(bad, queue_factory).linearizable);
}

TEST(LinChecker, ProgramOrderWithinProcessEnforced) {
  // p0 increments then reads 0 — the read must follow its own increment,
  // so a response of 0 is impossible.
  const auto factory = [] { return std::make_unique<CounterObject>(8); };
  History h;
  h.ops.push_back(op(0, "increment", {}, {}, 1, 2));
  h.ops.push_back(op(0, "read", {}, Value::of_u64(0), 3, 4));
  EXPECT_FALSE(check_linearizability(h, factory).linearizable);
}

TEST(LinCheckerDeath, IncompleteOperationRejected) {
  History h;
  h.ops.push_back(op(0, "read", {}, {}, 3, 0));
  EXPECT_DEATH(check_linearizability(h, counter_factory()), "incomplete");
}

// --- recorded histories from the real constructions ---

SimTask recorded_worker(ProcCtx ctx, HistoryRecorder* rec, int ops) {
  for (int k = 0; k < ops; ++k) {
    ObjOp op{"fetch&increment", {}};  // hoisted (GCC 12 workaround)
    (void)co_await rec->execute(ctx, std::move(op));
  }
  co_return Value::of_u64(0);
}

class RecordedLinSweep
    : public ::testing::TestWithParam<std::tuple<bool, int, std::uint64_t>> {
};

TEST_P(RecordedLinSweep, ConstructionsProduceLinearizableHistories) {
  const bool group = std::get<0>(GetParam());
  const int n = std::get<1>(GetParam());
  const std::uint64_t seed = std::get<2>(GetParam());

  std::unique_ptr<UniversalConstruction> uc;
  if (group) {
    uc = std::make_unique<GroupUpdateUC>(n, counter_factory());
  } else {
    uc = std::make_unique<SingleRegisterUC>(n, counter_factory());
  }
  HistoryRecorder recorder(*uc);
  System sys(n, [&recorder](ProcCtx ctx, ProcId, int) {
    return recorded_worker(ctx, &recorder, 2);
  });
  RandomScheduler sched(seed);
  ASSERT_TRUE(sched.run(sys, 1 << 24).all_terminated);

  const LinResult r =
      check_linearizability(recorder.history(), counter_factory());
  EXPECT_TRUE(r.linearizable) << recorder.history().to_string();
  EXPECT_EQ(recorder.history().ops.size(), static_cast<std::size_t>(2 * n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecordedLinSweep,
    ::testing::Combine(::testing::Bool(), ::testing::Values(2, 3, 4),
                       ::testing::Values(1u, 7u, 42u, 99u)));

TEST(HistoryRecorder, TimestampsNestProperly) {
  GroupUpdateUC uc(2, counter_factory());
  HistoryRecorder recorder(uc);
  System sys(2, [&recorder](ProcCtx ctx, ProcId, int) {
    return recorded_worker(ctx, &recorder, 1);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1 << 20).all_terminated);
  for (const HistOp& o : recorder.history().ops) {
    EXPECT_LT(o.inv_time, o.resp_time);
    EXPECT_TRUE(o.response.holds_u64());
  }
}

}  // namespace
}  // namespace llsc
