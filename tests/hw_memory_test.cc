// HwMemory: single-thread parity with the paper-exact SharedMemory, the
// deterministic cross-thread SC/VL invalidation contract, lock-free
// fetch&increment counting under real contention, and epoch reclamation
// accounting. The whole suite runs once per register-storage policy
// (boxed nodes and inline tagged words — memory/storage_policy.h), since
// every semantic assertion must hold identically under both; only the
// reclamation-accounting expectations are policy-aware (inline storage
// allocates no nodes for small u64 payloads). Inline-only behaviors
// (overflow demotion, strict faulting, version-tag wrap) get their own
// unparameterized tests at the bottom.
#include "hw/hw_memory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "memory/rmw.h"
#include "memory/shared_memory.h"
#include "memory/storage_policy.h"
#include "util/rng.h"

namespace llsc {
namespace {

class HwMemoryPolicyTest : public ::testing::TestWithParam<StoragePolicy> {
 protected:
  bool inline_policy() const { return GetParam() != StoragePolicy::kBoxed; }
};

INSTANTIATE_TEST_SUITE_P(
    Storage, HwMemoryPolicyTest,
    ::testing::Values(StoragePolicy::kBoxed, StoragePolicy::kInline),
    [](const ::testing::TestParamInfo<StoragePolicy>& info) {
      return info.param == StoragePolicy::kBoxed ? "Boxed" : "Inline";
    });

TEST_P(HwMemoryPolicyTest, LlScBasics) {
  HwMemory mem(4, 2, {}, GetParam());
  EXPECT_TRUE(mem.ll(0, 0).is_nil());
  OpResult r = mem.sc(0, 0, Value::of_u64(7));
  EXPECT_TRUE(r.flag);
  EXPECT_TRUE(r.value.is_nil());  // previous value on success
  EXPECT_EQ(mem.peek_value(0).as_u64(), 7u);
  // A successful SC clears the whole Pset, including the writer's own
  // link: an immediate second SC must fail and report the current value.
  r = mem.sc(0, 0, Value::of_u64(8));
  EXPECT_FALSE(r.flag);
  EXPECT_EQ(r.value.as_u64(), 7u);
  EXPECT_EQ(mem.peek_value(0).as_u64(), 7u);
}

TEST_P(HwMemoryPolicyTest, InterveningScInvalidatesOtherLinks) {
  HwMemory mem(4, 2, {}, GetParam());
  (void)mem.ll(0, 0);
  (void)mem.ll(1, 0);
  ASSERT_TRUE(mem.sc(1, 0, Value::of_u64(1)).flag);
  // Process 0's link died with process 1's successful SC.
  EXPECT_FALSE(mem.validate(0, 0).flag);
  OpResult r = mem.sc(0, 0, Value::of_u64(2));
  EXPECT_FALSE(r.flag);
  EXPECT_EQ(r.value.as_u64(), 1u);
}

TEST_P(HwMemoryPolicyTest, SwapAndMoveInvalidate) {
  HwMemory mem(4, 2, {}, GetParam());
  (void)mem.ll(0, 0);
  EXPECT_TRUE(mem.swap(1, 0, Value::of_u64(3)).is_nil());
  EXPECT_FALSE(mem.validate(0, 0).flag);
  EXPECT_FALSE(mem.sc(0, 0, Value::of_u64(9)).flag);

  (void)mem.ll(0, 1);
  mem.move(1, /*src=*/0, /*dst=*/1);
  EXPECT_EQ(mem.peek_value(1).as_u64(), 3u);
  EXPECT_EQ(mem.peek_value(0).as_u64(), 3u);  // source unchanged
  EXPECT_FALSE(mem.validate(0, 1).flag);
}

TEST_P(HwMemoryPolicyTest, RmwAppliesAndReturnsOld) {
  HwMemory mem(2, 1, {}, GetParam());
  (void)mem.swap(0, 0, Value::of_u64(10));
  const auto inc = make_rmw("inc", [](const Value& v) {
    return Value::of_u64(v.as_u64() + 1);
  });
  EXPECT_EQ(mem.rmw(0, 0, *inc).as_u64(), 10u);
  EXPECT_EQ(mem.peek_value(0).as_u64(), 11u);
}

// Random single-thread op script applied to both memories step by step —
// every response (flag and value) must match the paper-exact model.
TEST_P(HwMemoryPolicyTest, RandomParityWithSharedMemory) {
  constexpr int kProcs = 3;
  constexpr RegId kRegs = 4;
  HwMemory hw(kRegs, kProcs, {}, GetParam());
  SharedMemory model;
  model.set_storage_policy(GetParam());
  Rng rng(42);
  for (int step = 0; step < 5000; ++step) {
    PendingOp op;
    op.reg = rng.next_below(kRegs);
    const ProcId p = static_cast<ProcId>(rng.next_below(kProcs));
    switch (rng.next_below(5)) {
      case 0:
        op.kind = OpKind::kLL;
        break;
      case 1:
        op.kind = OpKind::kSC;
        op.arg = Value::of_u64(rng.next_u64() % 1000);
        break;
      case 2:
        op.kind = OpKind::kValidate;
        break;
      case 3:
        op.kind = OpKind::kSwap;
        op.arg = Value::of_u64(rng.next_u64() % 1000);
        break;
      default:
        op.kind = OpKind::kMove;
        op.src = (op.reg + 1 + rng.next_below(kRegs - 1)) % kRegs;
        break;
    }
    const OpResult got = hw.apply(p, op);
    const OpResult want = model.apply(p, op);
    ASSERT_EQ(got.flag, want.flag) << "step " << step;
    ASSERT_EQ(got.value, want.value) << "step " << step;
  }
  // Width accounting ticks at the same completed-install points on both
  // substrates, so the deterministic script produces identical counters.
  const RegisterWidthStats hw_width = hw.width_stats();
  const RegisterWidthStats sim_width = model.width_stats();
  EXPECT_EQ(hw_width.policy, GetParam());
  EXPECT_EQ(hw_width.writes_inspected, sim_width.writes_inspected);
  EXPECT_EQ(hw_width.max_bits, sim_width.max_bits);
  EXPECT_EQ(hw_width.overflow_events, sim_width.overflow_events);
  EXPECT_EQ(hw_width.inline_installs, sim_width.inline_installs);
  EXPECT_EQ(hw_width.boxed_installs, sim_width.boxed_installs);
  EXPECT_EQ(hw_width.boxed_fallback_registers,
            sim_width.boxed_fallback_registers);
}

// Deterministic two-thread handshake: after an intervening swap, the
// reader's VL and SC must both fail — every round, no races about it.
TEST_P(HwMemoryPolicyTest, ScAndVlNeverSucceedAfterInterveningWrite) {
  constexpr int kRounds = 2000;
  HwMemory mem(2, 2, {}, GetParam());
  std::atomic<int> linked_round{-1};
  std::atomic<int> swapped_round{-1};
  std::thread writer([&] {
    for (int i = 0; i < kRounds; ++i) {
      while (linked_round.load() < i) std::this_thread::yield();
      (void)mem.swap(1, 0, Value::of_u64(static_cast<std::uint64_t>(i)));
      swapped_round.store(i);
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    (void)mem.ll(0, 0);
    linked_round.store(i);
    while (swapped_round.load() < i) std::this_thread::yield();
    EXPECT_FALSE(mem.validate(0, 0).flag) << "round " << i;
    EXPECT_FALSE(mem.sc(0, 0, Value::of_u64(~0ull)).flag) << "round " << i;
  }
  writer.join();
  // No bogus SC ever landed: the register holds the last swap's value.
  EXPECT_EQ(mem.peek_value(0).as_u64(),
            static_cast<std::uint64_t>(kRounds - 1));
}

// Lock-free fetch&increment via LL/SC retry from several threads. Every
// successful SC adds exactly 1, so the final value must equal the summed
// success counts — lost updates (an SC succeeding despite an intervening
// write) or duplicated ones would break the equality.
TEST_P(HwMemoryPolicyTest, ConcurrentFetchIncrementIsExact) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 3000;
  HwMemory mem(1, kThreads, {}, GetParam());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t ok = 0;
      while (ok < kPerThread) {
        const Value v = mem.ll(t, 0);
        const std::uint64_t cur = v.is_nil() ? 0 : v.as_u64();
        if (mem.sc(t, 0, Value::of_u64(cur + 1)).flag) ++ok;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mem.peek_value(0).as_u64(), kThreads * kPerThread);
  // The retry loop's payloads all fit an inline word, so the inline
  // policy's hot path must never box a node.
  if (inline_policy()) {
    EXPECT_EQ(mem.reclaim_stats().nodes_allocated, 0u);
    EXPECT_EQ(mem.width_stats().overflow_events, 0u);
  }
}

TEST_P(HwMemoryPolicyTest, EpochReclamationFreesRetiredNodes) {
  // Pinned to the epoch reclaimer: the assertions below (global_epoch
  // advancing, the scan-interval tail) are epoch-specific, so the test
  // must not float with LLSC_RECLAIMER. The hazard twin lives in
  // tests/hw_reclaim_test.cc.
  HwMemory mem(1, 1, {}, GetParam(), ReclaimPolicy::kEpoch);
  for (int i = 0; i < 20000; ++i) {
    (void)mem.swap(0, 0, Value::of_u64(static_cast<std::uint64_t>(i)));
  }
  const HwReclaimStats s = mem.reclaim_stats();
  if (inline_policy()) {
    // Small u64 payloads live in the register word itself: no nodes were
    // ever allocated, so there is nothing to retire or reclaim.
    EXPECT_EQ(s.nodes_allocated, 0u);
    EXPECT_EQ(s.nodes_retired, 0u);
    EXPECT_EQ(s.nodes_freed, 0u);
    EXPECT_EQ(mem.width_stats().inline_installs, 20000u);
    return;
  }
  EXPECT_EQ(s.nodes_allocated, 20000u);
  EXPECT_EQ(s.nodes_retired, 20000u);  // every install retires its predecessor
  EXPECT_LE(s.nodes_freed, s.nodes_retired);
  // The unfreed tail is bounded by a few scan intervals, not the workload.
  EXPECT_GT(s.nodes_freed, 19000u);
  EXPECT_GT(s.global_epoch, 1u);
}

// Oversubscription stress: twice as many worker threads as the machine
// has cores, all hammering one register through the rmw retry loop under
// the adaptive+parking policy (the configuration it exists for). Exactness
// of the final count proves no increment was lost or duplicated across
// spin, yield, AND park wait paths; the stats cross-check pins the
// accounting (every loop iteration is either a counted failure or a
// counted success). Runs under the tsan CI job like every hw_* suite.
TEST_P(HwMemoryPolicyTest, OversubscribedAdaptiveParkingRmwIsExact) {
  const int kThreads = std::max(
      4, 2 * static_cast<int>(std::thread::hardware_concurrency()));
  constexpr std::uint64_t kPerThread = 1500;
  BackoffOptions opts;
  opts.policy = BackoffPolicy::kAdaptiveParking;
  // A small window cap plus an immediate park threshold pushes the test
  // through the parking tier quickly instead of spending its budget
  // spinning.
  opts.max_spins = 64;
  opts.yield_threshold = 32;
  opts.park_threshold = 1;
  HwMemory mem(1, kThreads, opts, GetParam());
  const auto inc = make_rmw("inc", [](const Value& v) {
    return Value::of_u64(v.is_nil() ? 1 : v.as_u64() + 1);
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        (void)mem.rmw(t, 0, *inc);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mem.peek_value(0).as_u64(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const HwBackoffStats s = mem.backoff_stats();
  EXPECT_EQ(s.policy, BackoffPolicy::kAdaptiveParking);
  // Every rmw lands exactly once, so successes count the operations and
  // every backoff wait was triggered by a counted failure.
  EXPECT_EQ(s.cas_successes, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.cas_failures, s.spin_pauses + s.yields + s.parks);
  EXPECT_GE(s.failure_rate(), 0.0);
  EXPECT_LE(s.failure_rate(), 1.0);
}

TEST_P(HwMemoryPolicyTest, ReclamationUnderContention) {
  constexpr int kThreads = 4;
  HwMemory mem(2, kThreads, {}, GetParam());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 4000; ++i) {
        const RegId r = static_cast<RegId>(i & 1);
        const Value v = mem.ll(t, r);
        const std::uint64_t cur = v.is_nil() ? 0 : v.as_u64();
        if (!mem.sc(t, r, Value::of_u64(cur + 1)).flag) {
          (void)mem.swap(t, r, Value::of_u64(cur));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const HwReclaimStats s = mem.reclaim_stats();
  EXPECT_EQ(s.nodes_retired, s.nodes_allocated);
  if (inline_policy()) {
    // All payloads fit inline — the policy's no-allocation promise holds
    // under contention too.
    EXPECT_EQ(s.nodes_allocated, 0u);
    return;
  }
  EXPECT_GT(s.nodes_freed, 0u);
  EXPECT_LE(s.nodes_freed, s.nodes_retired);
}

// --- inline-only behaviors ----------------------------------------------

// A value beyond the 47-bit payload bound demotes the register to a boxed
// node (sticky), counts an overflow event, and keeps every subsequent
// operation correct — including small values that would have fit.
TEST(HwMemoryInlineTest, OverflowDemotesRegisterAndCounts) {
  HwMemory mem(2, 1, {}, StoragePolicy::kInline);
  const Value big = Value::of_u64(kInlineMaxU64 + 1);
  (void)mem.swap(0, 0, big);
  EXPECT_EQ(mem.peek_value(0).as_u64(), kInlineMaxU64 + 1);
  RegisterWidthStats w = mem.width_stats();
  EXPECT_EQ(w.policy, StoragePolicy::kInline);
  EXPECT_EQ(w.overflow_events, 1u);
  EXPECT_EQ(w.boxed_installs, 1u);
  EXPECT_EQ(w.boxed_fallback_registers, 1u);
  // Demotion is sticky: a small value on the demoted register is boxed,
  // while the untouched register still installs inline.
  (void)mem.swap(0, 0, Value::of_u64(5));
  (void)mem.swap(0, 1, Value::of_u64(5));
  w = mem.width_stats();
  EXPECT_EQ(w.boxed_installs, 2u);
  EXPECT_EQ(w.inline_installs, 1u);
  EXPECT_EQ(w.boxed_fallback_registers, 1u);
  EXPECT_EQ(w.overflow_events, 1u);  // only the unencodable write counts
  // LL/SC on the demoted register behaves exactly as specified.
  (void)mem.ll(0, 0);
  EXPECT_TRUE(mem.sc(0, 0, Value::of_u64(6)).flag);
  EXPECT_EQ(mem.peek_value(0).as_u64(), 6u);
}

// Strict policy: a completed write that does not fit faults the run
// instead of falling back; a FAILED SC never faults, whatever its
// argument (matching the simulator's check-after-link-check order).
TEST(HwMemoryInlineTest, StrictPolicyThrowsOnOverflow) {
  HwMemory mem(2, 2, {}, StoragePolicy::kInlineStrict);
  const Value big = Value::of_u64(kInlineMaxU64 + 1);
  EXPECT_THROW((void)mem.swap(0, 0, big), RegisterOverflowError);
  // The failed swap mutated nothing.
  EXPECT_TRUE(mem.peek_value(0).is_nil());
  // Dead link: the SC fails before the overflow check and must not throw.
  (void)mem.ll(0, 1);
  (void)mem.swap(1, 1, Value::of_u64(1));
  OpResult r;
  EXPECT_NO_THROW(r = mem.sc(0, 1, big));
  EXPECT_FALSE(r.flag);
  // Live link: the SC would complete, so the overflow faults it.
  (void)mem.ll(0, 1);
  EXPECT_THROW((void)mem.sc(0, 1, big), RegisterOverflowError);
  EXPECT_EQ(mem.peek_value(1).as_u64(), 1u);
}

// Version-tag wrap: the 16-bit tag cycles after 65535 completed inline
// writes. Far more writes than one period must leave LL/SC semantics
// intact (each write bumps the tag, so a stale link can only revalidate
// after exactly k * 65535 intervening writes — not exercised here; this
// pins the wrap itself: correct values, zero allocations, full count).
TEST(HwMemoryInlineTest, TagWrapKeepsLlScExact) {
  constexpr std::uint64_t kWrites = 70000;  // > one 65535 tag period
  HwMemory mem(1, 1, {}, StoragePolicy::kInline);
  for (std::uint64_t i = 0; i < kWrites; ++i) {
    (void)mem.ll(0, 0);
    const OpResult r = mem.sc(0, 0, Value::of_u64(i));
    ASSERT_TRUE(r.flag) << "write " << i;
  }
  EXPECT_EQ(mem.peek_value(0).as_u64(), kWrites - 1);
  EXPECT_EQ(mem.reclaim_stats().nodes_allocated, 0u);
  const RegisterWidthStats w = mem.width_stats();
  EXPECT_EQ(w.inline_installs, kWrites);
  EXPECT_EQ(w.overflow_events, 0u);
  // A link taken before a wrapped-tag write must still be dead after it.
  (void)mem.ll(0, 0);
  (void)mem.swap(0, 0, Value::of_u64(1));
  EXPECT_FALSE(mem.validate(0, 0).flag);
}

}  // namespace
}  // namespace llsc
