// Tests for the type-exploiting implementations (src/direct) and the
// Section 7 unit-time RMW universal construction: correctness, exact
// shared-op costs, linearizability, and the adversary's refusal to
// schedule RMW steps.
#include <gtest/gtest.h>

#include "core/adversary.h"
#include "direct/direct.h"
#include "direct/rmw_universal.h"
#include "lin/checker.h"
#include "lin/history.h"
#include "objects/arith.h"
#include "objects/basic.h"
#include "objects/containers.h"
#include "sched/scheduler.h"

namespace llsc {
namespace {

SimTask one_op_worker(ProcCtx ctx, UniversalConstruction* impl, ObjOp op) {
  const Value r = co_await impl->execute(ctx, std::move(op));
  co_return r;
}

TEST(DirectRegister, ReadWriteSingleOpEach) {
  DirectRegister reg(5);
  System sys(2, [&reg](ProcCtx ctx, ProcId i, int) {
    ObjOp op = i == 0 ? ObjOp{"write", Value::of_u64(7)}
                      : ObjOp{"read", {}};
    return one_op_worker(ctx, &reg, std::move(op));
  });
  SequentialScheduler sched;  // p0 writes, then p1 reads
  ASSERT_TRUE(sched.run(sys, 100).all_terminated);
  EXPECT_EQ(sys.process(1).result().as_u64(), 7u);
  EXPECT_EQ(sys.process(0).shared_ops(), 1u);
  EXPECT_EQ(sys.process(1).shared_ops(), 1u);
}

TEST(DirectSwapObject, SwapChainsValues) {
  DirectSwapObject obj(9);
  const int n = 4;
  System sys(n, [&obj](ProcCtx ctx, ProcId i, int) {
    ObjOp op{"swap", Value::of_u64(static_cast<std::uint64_t>(i) + 100)};
    return one_op_worker(ctx, &obj, std::move(op));
  });
  SequentialScheduler sched;
  ASSERT_TRUE(sched.run(sys, 100).all_terminated);
  // Sequential: p0 gets nil, p_k gets p_{k-1}'s value; each pays 1 op.
  EXPECT_TRUE(sys.process(0).result().is_nil());
  for (ProcId p = 1; p < n; ++p) {
    EXPECT_EQ(sys.process(p).result().as_u64(),
              static_cast<std::uint64_t>(p) + 99);
    EXPECT_EQ(sys.process(p).shared_ops(), 1u);
  }
}

class DirectConsensusSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DirectConsensusSweep, AgreementValidityWaitFree) {
  const int n = std::get<0>(GetParam());
  const int sched_kind = std::get<1>(GetParam());
  DirectConsensus cons(3);
  System sys(n, [&cons](ProcCtx ctx, ProcId i, int) {
    ObjOp op{"propose", Value::of_u64(static_cast<std::uint64_t>(i) + 50)};
    return one_op_worker(ctx, &cons, std::move(op));
  });
  std::unique_ptr<Scheduler> sched;
  switch (sched_kind) {
    case 0:
      sched = std::make_unique<RoundRobinScheduler>();
      break;
    case 1:
      sched = std::make_unique<SequentialScheduler>();
      break;
    default:
      sched = std::make_unique<RandomScheduler>(
          static_cast<std::uint64_t>(n) * 17);
      break;
  }
  ASSERT_TRUE(sched->run(sys, 10000).all_terminated);
  // Agreement: all decide the same value. Validity: it was proposed.
  const std::uint64_t decision = sys.process(0).result().as_u64();
  EXPECT_GE(decision, 50u);
  EXPECT_LT(decision, 50u + static_cast<std::uint64_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_EQ(sys.process(p).result().as_u64(), decision);
    EXPECT_LE(sys.process(p).shared_ops(), cons.worst_case_shared_ops());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DirectConsensusSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 9, 17),
                       ::testing::Values(0, 1, 2)));

TEST(DirectFetchAdd, CorrectUnderContentionButLinearUnderAdversary) {
  const int n = 16;
  DirectFetchAdd counter(0);
  System sys(n, [&counter](ProcCtx ctx, ProcId, int) {
    ObjOp op{"fetch&increment", {}};
    return one_op_worker(ctx, &counter, std::move(op));
  });
  const RunLog log = run_adversary(sys);
  ASSERT_TRUE(log.all_terminated);
  // Each response 0..n-1 exactly once.
  std::set<std::uint64_t> seen;
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_TRUE(seen.insert(sys.process(p).result().as_u64()).second);
  }
  EXPECT_EQ(*seen.rbegin(), static_cast<std::uint64_t>(n - 1));
  // Lock-free, not wait-free: the adversary forces Θ(n) on someone.
  EXPECT_GE(sys.max_shared_ops(), static_cast<std::uint64_t>(n));
}

TEST(RmwUniversal, OneSharedOpPerOperation) {
  const int n = 8;
  RmwUniversalUC uc(n, [] { return std::make_unique<FetchAddObject>(64); });
  System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
    ObjOp op{"fetch&increment", {}};
    return one_op_worker(ctx, &uc, std::move(op));
  });
  RandomScheduler sched(5);
  ASSERT_TRUE(sched.run(sys, 10000).all_terminated);
  std::uint64_t total = 0;
  for (ProcId p = 0; p < n; ++p) {
    total += sys.process(p).result().as_u64();
    // Section 7: unit worst-case shared-access time complexity.
    EXPECT_EQ(sys.process(p).shared_ops(), 1u);
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(n * (n - 1) / 2));
}

SimTask enq_deq_worker(ProcCtx c, ProcId me, HistoryRecorder* q) {
  ObjOp enq{"enqueue", Value::of_u64(static_cast<std::uint64_t>(me))};
  (void)co_await q->execute(c, std::move(enq));
  ObjOp deq{"dequeue", {}};
  const Value r = co_await q->execute(c, std::move(deq));
  co_return r;
}

TEST(RmwUniversal, ObliviouslyImplementsQueue) {
  const int n = 4;
  RmwUniversalUC uc(n, [] { return std::make_unique<QueueObject>(); });
  HistoryRecorder recorder(uc);
  System sys(n, [&recorder](ProcCtx ctx, ProcId i, int) {
    return enq_deq_worker(ctx, i, &recorder);
  });
  RandomScheduler sched(77);
  ASSERT_TRUE(sched.run(sys, 10000).all_terminated);
  const LinResult lin = check_linearizability(
      recorder.history(), [] { return std::make_unique<QueueObject>(); });
  EXPECT_TRUE(lin.linearizable) << recorder.history().to_string();
}

SimTask rmw_under_adversary(ProcCtx ctx) {
  const Value v = co_await ctx.rmw(
      0, make_rmw("inc", [](const Value& cur) {
        return Value::of_u64(cur.is_nil() ? 1 : cur.as_u64() + 1);
      }));
  co_return v;
}

TEST(RmwDeath, AdversaryRefusesRmwSteps) {
  // Theorem 6.1's adversary is defined for LL/SC/VL/swap/move only; an
  // algorithm that issues RMW under it is a contract violation.
  System sys(2, [](ProcCtx ctx, ProcId, int) {
    return rmw_under_adversary(ctx);
  });
  EXPECT_DEATH(run_adversary(sys), "RMW is outside");
}

TEST(Rmw, WorksUnderGenericSchedulers) {
  const int n = 5;
  System sys(n, [](ProcCtx ctx, ProcId, int) {
    return rmw_under_adversary(ctx);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1000).all_terminated);
  // Each RMW returned the old counter value; all distinct.
  std::set<std::uint64_t> seen;
  for (ProcId p = 0; p < n; ++p) {
    const Value& r = sys.process(p).result();
    seen.insert(r.is_nil() ? 0 : r.as_u64());
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(sys.memory().counts()[OpKind::kRmw],
            static_cast<std::uint64_t>(n));
}

TEST(DirectDeath, WrongOperationRejected) {
  DirectRegister reg(0);
  System sys(1, [&reg](ProcCtx ctx, ProcId, int) {
    ObjOp op{"dequeue", {}};
    return one_op_worker(ctx, &reg, std::move(op));
  });
  RoundRobinScheduler sched;
  EXPECT_DEATH(sched.run(sys, 100), "read/write only");
}

}  // namespace
}  // namespace llsc
