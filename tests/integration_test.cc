// Grand-tour integration tests: the full pipeline — adversary run, UP
// tracking, (S,A)-run, indistinguishability, width audit, wakeup check —
// composed end to end at larger scales than the unit tests use, plus a
// few cross-module contract checks.
#include <gtest/gtest.h>

#include "core/adversary.h"
#include "core/audit.h"
#include "core/indistinguishability.h"
#include "core/lower_bound.h"
#include "core/s_run.h"
#include "core/up_tracker.h"
#include "runtime/toss.h"
#include "universal/group_update.h"
#include "util/str.h"
#include "wakeup/algorithms.h"
#include "wakeup/reductions.h"
#include "wakeup/spec.h"

namespace llsc {
namespace {

TEST(Integration, FullPipelineAtN64) {
  const int n = 64;
  const auto tosses = std::make_shared<SeededTossAssignment>(2718);

  // 1. (All,A)-run of the swap+move wakeup under the Fig. 2 adversary.
  System all_sys(n, swap_mix_wakeup(), tosses);
  const RunLog all_log = run_adversary(all_sys);
  ASSERT_TRUE(all_log.all_terminated);
  const WakeupCheckResult wakeup = check_wakeup_run(all_sys);
  ASSERT_TRUE(wakeup.ok) << wakeup.violations.front();

  // 2. UP tracking: Lemma 5.1 holds; the winner's UP set at its op count
  //    bounds the S-run.
  const UpTracker up = UpTracker::over(all_log);
  ASSERT_TRUE(up.lemma51_holds());

  // 3. Theorem 6.1 numbers.
  std::uint64_t winner_ops = ~std::uint64_t{0};
  ProcId winner = -1;
  for (ProcId p = 0; p < n; ++p) {
    const Process& proc = all_sys.process(p);
    if (proc.done() && proc.result().as_u64() == 1 &&
        proc.shared_ops() < winner_ops) {
      winner_ops = proc.shared_ops();
      winner = p;
    }
  }
  ASSERT_NE(winner, -1);
  EXPECT_GE(static_cast<double>(winner_ops), log4(n));

  // 4. (S,A)-run for S = UP(winner, winner_ops) ∪ a few extras.
  ProcSet s = up.up_process(
      winner, static_cast<int>(std::min<std::uint64_t>(
                  winner_ops, static_cast<std::uint64_t>(up.num_rounds()))));
  s.insert(0);
  s.insert(n / 2);
  System s_sys(n, swap_mix_wakeup(), tosses);
  const RunLog s_log = run_s_run(s_sys, all_log, up, s);

  // 5. Lemma 5.2 across the whole run.
  const IndistReport indist =
      check_indistinguishability(all_log, s_log, up, s);
  EXPECT_TRUE(indist.ok) << indist.violations.front();
  EXPECT_GT(indist.register_checks, 100u);

  // 6. Width audit: swap_mix stores subtree up-SETS in registers, so it
  //    needs unbounded words (unlike the count-based tournament, audited
  //    in audit_test).
  const WidthAudit audit = audit_register_widths(all_sys.trace());
  EXPECT_FALSE(audit.bounded);
}

TEST(Integration, ReductionThroughConstructionUnderFullAnalysis) {
  // The Corollary 6.1 composition, analyzed with the Theorem 6.1 driver:
  // wakeup-via-queue through the oblivious construction must meet the
  // bound and pass the optional indistinguishability check.
  const int n = 16;
  WakeupLowerBoundOptions opts;
  opts.always_check_indistinguishability = true;
  // The construction is stateful, so the analysis (which executes several
  // runs) gets a factory that rebuilds the whole scenario each time.
  std::vector<std::shared_ptr<GroupUpdateUC>> keep_alive;
  const BodyFactory scenario = [n, &keep_alive]() {
    auto uc = std::make_shared<GroupUpdateUC>(
        n, reduction_object_factory("queue", n));
    keep_alive.push_back(uc);
    ProcBody inner = reduction_wakeup_body("queue", *uc);
    return ProcBody([uc, inner](ProcCtx ctx, ProcId i, int procs) {
      return inner(ctx, i, procs);
    });
  };
  const WakeupLowerBoundReport report =
      analyze_wakeup_run(scenario, n, nullptr, opts);
  ASSERT_TRUE(report.terminated);
  EXPECT_TRUE(report.bound_met) << report.summary();
  ASSERT_TRUE(report.s_run_built);
  EXPECT_TRUE(report.indist.ok) << report.indist.summary();
}

TEST(Integration, MemoryCountsResetBetweenPhases) {
  SharedMemory mem;
  mem.ll(0, 1);
  mem.swap(0, 2, Value::of_u64(1));
  EXPECT_EQ(mem.counts().total(), 2u);
  mem.reset_counts();
  EXPECT_EQ(mem.counts().total(), 0u);
  mem.validate(0, 1);
  EXPECT_EQ(mem.counts()[OpKind::kValidate], 1u);
}

TEST(IntegrationDeath, IndistCheckerRequiresSnapshots) {
  const int n = 4;
  System sys(n, tournament_wakeup());
  AdversaryOptions opts;
  opts.record_snapshots = false;
  const RunLog lean = run_adversary(sys, opts);
  const UpTracker up = UpTracker::over(lean);
  System s_sys(n, tournament_wakeup());
  const RunLog s_log = run_s_run(s_sys, lean, up, ProcSet::full(n));
  EXPECT_DEATH(
      check_indistinguishability(lean, s_log, up, ProcSet::full(n)),
      "no snapshots");
}

TEST(IntegrationDeath, BigIntFromHexRejectsGarbage) {
  EXPECT_DEATH(BigInt::from_hex("0xZZ"), "non-hex");
}

}  // namespace
}  // namespace llsc
