// Tests for the Fig. 2 adversary: round/phase structure, group
// partitioning, secretive move scheduling, termination, snapshots.
#include "core/adversary.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "wakeup/algorithms.h"
#include "wakeup/spec.h"

namespace llsc {
namespace {

TEST(Adversary, TerminatesTournamentAndRecordsRounds) {
  System sys(8, tournament_wakeup());
  const RunLog log = run_adversary(sys);
  EXPECT_TRUE(log.all_terminated);
  EXPECT_GT(log.num_rounds(), 0);
  EXPECT_EQ(log.n, 8);
  EXPECT_EQ(log.snapshots.size(), static_cast<std::size_t>(log.num_rounds()));
  const WakeupCheckResult check = check_wakeup_run(sys);
  EXPECT_TRUE(check.ok) << check.violations.front();
}

TEST(Adversary, OneSharedOpPerLiveProcessPerRound) {
  System sys(6, tournament_wakeup());
  const RunLog log = run_adversary(sys);
  for (const RoundRecord& rec : log.rounds) {
    std::set<ProcId> seen;
    for (const OpRecord& op : rec.ops) {
      EXPECT_TRUE(seen.insert(op.proc).second)
          << "p" << op.proc << " stepped twice in round " << rec.round;
    }
    const std::size_t live = rec.g_load.size() + rec.g_move.size() +
                             rec.g_swap.size() + rec.g_sc.size();
    EXPECT_EQ(rec.ops.size(), live);
  }
}

TEST(Adversary, PhaseOrderWithinRound) {
  System sys(6, swap_mix_wakeup());
  const RunLog log = run_adversary(sys);
  EXPECT_TRUE(log.all_terminated);
  bool saw_swap = false;
  bool saw_move = false;
  for (const RoundRecord& rec : log.rounds) {
    // Ops must appear grouped: loads, then moves, then swaps, then SCs.
    int phase = 0;
    for (const OpRecord& op : rec.ops) {
      const int g = static_cast<int>(op_group(op.op.kind));
      EXPECT_GE(g, phase) << "phase order violated in round " << rec.round;
      phase = std::max(phase, g);
      saw_swap |= op.op.kind == OpKind::kSwap;
      saw_move |= op.op.kind == OpKind::kMove;
    }
  }
  // swap_mix exercises swap and move phases.
  EXPECT_TRUE(saw_swap);
  EXPECT_TRUE(saw_move);
}

TEST(Adversary, MovePhaseUsesSecretiveSchedule) {
  System sys(12, swap_mix_wakeup());
  const RunLog log = run_adversary(sys);
  for (const RoundRecord& rec : log.rounds) {
    if (rec.move_set.empty()) {
      EXPECT_TRUE(rec.sigma.empty());
      continue;
    }
    EXPECT_TRUE(is_secretive_complete(rec.move_set, rec.sigma))
        << "round " << rec.round;
  }
}

TEST(Adversary, AblatedMovesScheduleById) {
  System sys(12, swap_mix_wakeup());
  AdversaryOptions opts;
  opts.secretive_moves = false;
  const RunLog log = run_adversary(sys, opts);
  for (const RoundRecord& rec : log.rounds) {
    EXPECT_TRUE(std::is_sorted(rec.sigma.begin(), rec.sigma.end()));
  }
}

TEST(Adversary, LoadsObserveEndOfPreviousRound) {
  // Within a round, loads run before stores: an LL in the same round as a
  // successful SC on the same register must return the PREVIOUS value.
  System sys(4, counter_wakeup());
  const RunLog log = run_adversary(sys);
  EXPECT_TRUE(log.all_terminated);
  for (std::size_t r = 1; r < log.rounds.size(); ++r) {
    const RoundRecord& rec = log.rounds[r];
    for (const OpRecord& op : rec.ops) {
      if (op.op.kind != OpKind::kLL) continue;
      const auto& prev_snap = log.at(rec.round - 1);
      const auto it = prev_snap.regs.find(op.op.reg);
      const Value expected =
          it == prev_snap.regs.end() ? Value{} : it->second.value;
      EXPECT_EQ(op.result.value, expected)
          << "LL in round " << rec.round << " did not read the end-of-"
          << (rec.round - 1) << " value";
    }
  }
}

TEST(Adversary, AtMostOneSuccessfulScPerRegisterPerRound) {
  System sys(9, counter_wakeup());
  const RunLog log = run_adversary(sys);
  for (const RoundRecord& rec : log.rounds) {
    std::map<RegId, int> successes;
    for (const OpRecord& op : rec.ops) {
      if (op.op.kind == OpKind::kSC && op.result.flag) {
        ++successes[op.op.reg];
      }
    }
    for (const auto& [reg, count] : successes) {
      EXPECT_LE(count, 1) << "register " << reg << " round " << rec.round;
    }
  }
}

TEST(Adversary, RoundCapStopsNonTerminatingRuns) {
  // flaky with denominator 2 and all-zero tosses: every process draws
  // outcome 0 and spins forever.
  System sys(3, flaky_wakeup(2));
  AdversaryOptions opts;
  opts.max_rounds = 10;
  const RunLog log = run_adversary(sys, opts);
  EXPECT_FALSE(log.all_terminated);
  EXPECT_EQ(log.num_rounds(), 10);
}

TEST(Adversary, CounterWakeupForcedToLinearRounds) {
  // Under the adversary, the naive counter makes one process finish per
  // ~2 rounds: the last finisher performs Θ(n) operations.
  const int n = 16;
  System sys(n, counter_wakeup());
  const RunLog log = run_adversary(sys);
  ASSERT_TRUE(log.all_terminated);
  EXPECT_GE(sys.max_shared_ops(), static_cast<std::uint64_t>(n));
  const WakeupCheckResult check = check_wakeup_run(sys);
  EXPECT_TRUE(check.ok) << check.violations.front();
}

TEST(Adversary, SnapshotsCanBeDisabled) {
  System sys(4, tournament_wakeup());
  AdversaryOptions opts;
  opts.record_snapshots = false;
  const RunLog log = run_adversary(sys, opts);
  EXPECT_TRUE(log.all_terminated);
  EXPECT_TRUE(log.snapshots.empty());
  EXPECT_GT(log.num_rounds(), 0);
}

class AdversaryAlgorithmSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AdversaryAlgorithmSweep, WakeupSpecHoldsUnderAdversary) {
  const int n = std::get<0>(GetParam());
  const int alg = std::get<1>(GetParam());
  ProcBody body;
  switch (alg) {
    case 0:
      body = tournament_wakeup();
      break;
    case 1:
      body = counter_wakeup();
      break;
    default:
      body = swap_mix_wakeup();
      break;
  }
  System sys(n, body);
  const RunLog log = run_adversary(sys);
  ASSERT_TRUE(log.all_terminated) << "n=" << n << " alg=" << alg;
  const WakeupCheckResult check = check_wakeup_run(sys);
  EXPECT_TRUE(check.ok) << check.violations.front();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdversaryAlgorithmSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 16, 31),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace llsc
