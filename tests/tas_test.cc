// Specification sweeps for the randomized test-and-set (objects/tas.h).
//
// The strict protocol's safety is deterministic (write-once claim), so the
// exactly-one-winner spec is asserted UNCONDITIONALLY across every axis
// this file sweeps: n in 1..17, deterministic/random/adversary schedules,
// both register-storage policies, many toss seeds, and all three
// substrates (simulator, 1:1 HwExecutor, oversubscribed two-thread pool).
// The fixed-shape variant additionally pins its schedule-independent
// per-process op count to fixed_shape_tas_ops(n).
//
// The checker itself is tested the way wakeup_spec_test.cc tests the
// wakeup checker: each numbered condition of check_tas_run must fire when
// a synthetic run violates it.
#include "objects/tas.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/lower_bound.h"
#include "hw/hw_executor.h"
#include "hw/oversub_executor.h"
#include "memory/storage_policy.h"
#include "runtime/toss.h"
#include "sched/scheduler.h"

namespace llsc {
namespace {

constexpr std::uint64_t kBudget = 1 << 20;

class TasSpecTest : public ::testing::TestWithParam<StoragePolicy> {};

INSTANTIATE_TEST_SUITE_P(
    Storage, TasSpecTest,
    ::testing::Values(StoragePolicy::kBoxed, StoragePolicy::kInline),
    [](const ::testing::TestParamInfo<StoragePolicy>& info) {
      return info.param == StoragePolicy::kBoxed ? "Boxed" : "Inline";
    });

void run_and_check(const ProcBody& body, int n, std::uint64_t toss_seed,
                   Scheduler& sched, StoragePolicy storage,
                   const std::string& what) {
  auto tosses = std::make_shared<SeededTossAssignment>(toss_seed);
  System sys(n, body, tosses);
  sys.memory().set_storage_policy(storage);
  ASSERT_TRUE(sched.run(sys, kBudget).all_terminated) << what;
  const TasCheckResult res = check_tas_run(sys);
  EXPECT_TRUE(res.ok) << what << ": " << res.summary();
  EXPECT_EQ(res.num_winners, 1) << what;
}

TEST_P(TasSpecTest, StrictExactlyOneWinnerAcrossSchedulers) {
  const StoragePolicy storage = GetParam();
  const ProcBody body = randomized_tas_body();
  for (int n = 1; n <= 17; ++n) {
    for (const std::uint64_t seed : {1ull, 17ull, 1998ull}) {
      const std::string tag = "n=" + std::to_string(n) +
                              " toss_seed=" + std::to_string(seed);
      RoundRobinScheduler rr;
      run_and_check(body, n, seed, rr, storage, tag + " [round-robin]");
      SequentialScheduler seq;
      run_and_check(body, n, seed, seq, storage, tag + " [sequential]");
      RandomScheduler rnd(seed ^ 0xABCDu);
      run_and_check(body, n, seed, rnd, storage, tag + " [random]");
    }
  }
}

TEST_P(TasSpecTest, StrictSurvivesTheKnowledgeAdversary) {
  // The paper-adversary schedule plus the adaptive fault strategy: safety
  // must hold even when spurious SC failures target the most knowledgeable
  // process, and the winner's op count stays within the fault-free budget
  // only when no faults are injected.
  const StoragePolicy storage = GetParam();
  const ProcBody body = randomized_tas_body();
  AdversaryOptions adversary;
  adversary.max_rounds = 1 << 14;
  for (const int n : {2, 5, 9, 16}) {
    for (std::uint64_t s = 0; s < 6; ++s) {
      const McSampleOutcome clean =
          run_mc_sample(body, n, 0x7A5 + s, adversary, nullptr, storage);
      ASSERT_EQ(clean.status, RunStatus::kClean)
          << "n=" << n << " s=" << s;
      EXPECT_TRUE(clean.has_winner);
      EXPECT_LE(clean.winner_ops, tas_fault_free_max_ops(n))
          << "n=" << n << " s=" << s;

      FaultPlan plan;
      plan.seed = 0xFA0 + s;
      plan.strategy = FaultStrategyKind::kAdaptive;
      plan.fault_budget = 1 + (s % 5);
      const McSampleOutcome hostile =
          run_mc_sample(body, n, 0x7A5 + s, adversary, &plan, storage);
      // Injected spurious failures may slow the run but can never break
      // safety: a terminated hostile run still has exactly one winner.
      ASSERT_EQ(hostile.status, RunStatus::kClean)
          << "n=" << n << " s=" << s;
      EXPECT_TRUE(hostile.has_winner);
    }
  }
}

TEST_P(TasSpecTest, FixedShapeOpCountIsScheduleIndependent) {
  const StoragePolicy storage = GetParam();
  const ProcBody body = fixed_shape_tas_body();
  for (int n = 1; n <= 17; ++n) {
    const std::uint64_t want = fixed_shape_tas_ops(n);
    for (const std::uint64_t seed : {3ull, 404ull}) {
      auto tosses = std::make_shared<SeededTossAssignment>(seed);
      System sys(n, body, tosses);
      sys.memory().set_storage_policy(storage);
      RandomScheduler sched(seed);
      ASSERT_TRUE(sched.run(sys, kBudget).all_terminated) << "n=" << n;
      for (ProcId p = 0; p < n; ++p) {
        EXPECT_EQ(sys.process(p).shared_ops(), want)
            << "n=" << n << " p=" << p;
      }
      // Fault-free completed fixed-shape runs still elect exactly one
      // winner: some claim SC succeeds from nil, and at most one can.
      const TasCheckResult res = check_tas_run(sys);
      EXPECT_TRUE(res.ok) << "n=" << n << ": " << res.summary();
      EXPECT_EQ(res.num_winners, 1) << "n=" << n;
    }
  }
}

// --- hw + oversubscribed substrates -------------------------------------

int count_winners(const HwRunResult& run, int n) {
  int winners = 0;
  for (ProcId p = 0; p < n; ++p) {
    if (run.results[p].holds_u64() && run.results[p].as_u64() == 1) {
      ++winners;
    }
  }
  return winners;
}

TEST_P(TasSpecTest, StrictExactlyOneWinnerOnHw) {
  const StoragePolicy storage = GetParam();
  const ProcBody body = randomized_tas_body();
  for (const int n : {1, 2, 3, 5, 8}) {
    for (std::uint64_t s = 0; s < 8; ++s) {
      HwRunOptions options;
      options.seed = 0x9137 + s;
      options.storage = storage;
      HwExecutor exec(options);
      const HwRunResult run = exec.run(n, body);
      ASSERT_EQ(run.status, RunStatus::kClean) << "n=" << n << " s=" << s;
      EXPECT_EQ(count_winners(run, n), 1) << "n=" << n << " s=" << s;
    }
  }
}

TEST_P(TasSpecTest, StrictExactlyOneWinnerOversubscribed) {
  // n well above the two carrier threads: the claim handshake must not
  // care how coroutines are multiplexed onto cores.
  const StoragePolicy storage = GetParam();
  const ProcBody body = randomized_tas_body();
  for (const int n : {4, 9, 17}) {
    for (std::uint64_t s = 0; s < 4; ++s) {
      OversubRunOptions options;
      options.seed = 0x5EED + s;
      options.storage = storage;
      options.num_threads = 2;
      OversubscribedExecutor exec(options);
      const HwRunResult run = exec.run(n, body);
      ASSERT_EQ(run.status, RunStatus::kClean) << "n=" << n << " s=" << s;
      EXPECT_EQ(count_winners(run, n), 1) << "n=" << n << " s=" << s;
    }
  }
}

// --- the checker's own conditions ---------------------------------------

SimTask return_value_body(ProcCtx ctx, std::uint64_t v, int ops) {
  for (int i = 0; i < ops; ++i) (void)co_await ctx.validate(0);
  co_return Value::of_u64(v);
}

SimTask claim_then_return(ProcCtx ctx, std::uint64_t v) {
  // Write the claim register (register 0 of the default layout) so
  // condition (4)'s claim/result agreement is exercised.
  const Value me = Value::of_u64(static_cast<std::uint64_t>(ctx.id()));
  (void)co_await ctx.ll(0);
  (void)co_await ctx.sc(0, me);
  co_return Value::of_u64(v);
}

TEST(TasChecker, TwoWinnersViolateCondition2) {
  System sys(3, [](ProcCtx ctx, ProcId i, int) {
    return claim_then_return(ctx, i < 2 ? 1 : 0);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1000).all_terminated);
  const TasCheckResult res = check_tas_run(sys);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.num_winners, 2);
  EXPECT_NE(res.summary().find("(2)"), std::string::npos) << res.summary();
}

TEST(TasChecker, NonBooleanResultViolatesCondition1) {
  System sys(2, [](ProcCtx ctx, ProcId i, int) {
    return return_value_body(ctx, i == 0 ? 7 : 1, 1);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1000).all_terminated);
  const TasCheckResult res = check_tas_run(sys);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.summary().find("(1)"), std::string::npos) << res.summary();
}

TEST(TasChecker, ZeroWinnersViolateCondition3) {
  System sys(2, [](ProcCtx ctx, ProcId, int) {
    return return_value_body(ctx, 0, 1);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1000).all_terminated);
  const TasCheckResult res = check_tas_run(sys);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.summary().find("(3)"), std::string::npos) << res.summary();

  // The fixed-shape escape hatch: under forced-failure plans a winnerless
  // completed run is the documented contract.
  TasCheckOptions options;
  options.require_winner = false;
  const TasCheckResult relaxed = check_tas_run(sys, options);
  EXPECT_FALSE(relaxed.ok);  // (4) still fires: losers with a nil claim
  EXPECT_NE(relaxed.summary().find("(4)"), std::string::npos)
      << relaxed.summary();
}

TEST(TasChecker, LoserBeforeClaimViolatesCondition4) {
  // One "winner" that never touched the claim register, one loser: the
  // claim register stays nil, so both halves of condition (4) fire.
  System sys(2, [](ProcCtx ctx, ProcId i, int) {
    return return_value_body(ctx, i == 0 ? 1 : 0, 1);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1000).all_terminated);
  const TasCheckResult res = check_tas_run(sys);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.summary().find("(4)"), std::string::npos) << res.summary();
}

TEST(TasObjectSpec, SequentialSemantics) {
  TasObject obj;
  ObjOp op{"test&set", {}};
  EXPECT_EQ(obj.state_fingerprint(), "tas:0");
  EXPECT_EQ(obj.apply(op), Value::of_u64(0));
  EXPECT_EQ(obj.apply(op), Value::of_u64(1));
  EXPECT_EQ(obj.apply(op), Value::of_u64(1));
  EXPECT_EQ(obj.state_fingerprint(), "tas:1");
  const auto copy = obj.clone();
  EXPECT_EQ(copy->state_fingerprint(), "tas:1");
  EXPECT_EQ(copy->type_name(), "test&set");
}

}  // namespace
}  // namespace llsc
