// Tests for the Theorem 6.1 driver and the Lemma 3.1 estimator: correct
// wakeups meet the log_4 n bound; a cheating sub-logarithmic "solution" is
// refuted by an (S,A)-run witness.
#include "core/lower_bound.h"

#include <gtest/gtest.h>

#include "util/str.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

TEST(LowerBound, TournamentMeetsBound) {
  for (const int n : {2, 4, 8, 16, 64, 256}) {
    const WakeupLowerBoundReport report =
        analyze_wakeup_run(tournament_wakeup(), n);
    ASSERT_TRUE(report.terminated) << "n=" << n;
    ASSERT_NE(report.winner, -1);
    EXPECT_TRUE(report.bound_met) << report.summary();
    EXPECT_GE(static_cast<double>(report.winner_ops), log4(n)) << "n=" << n;
  }
}

TEST(LowerBound, CounterMeetsBoundWithLinearOps) {
  const int n = 32;
  const WakeupLowerBoundReport report =
      analyze_wakeup_run(counter_wakeup(), n);
  ASSERT_TRUE(report.terminated);
  EXPECT_TRUE(report.bound_met);
  // The naive counter is far from optimal: the winner performs Θ(n) ops.
  EXPECT_GE(report.winner_ops, static_cast<std::uint64_t>(n));
}

TEST(LowerBound, IndistinguishabilityHoldsWhenRequested) {
  WakeupLowerBoundOptions opts;
  opts.always_check_indistinguishability = true;
  const WakeupLowerBoundReport report =
      analyze_wakeup_run(tournament_wakeup(), 8, nullptr, opts);
  ASSERT_TRUE(report.s_run_built);
  EXPECT_TRUE(report.indist.ok) << report.indist.summary();
  // Lemma 5.1: |S| = |UP(winner, r)| <= 4^r.
  EXPECT_LE(report.up_size, UpTracker::lemma51_bound(
                                static_cast<int>(report.winner_ops)));
}

TEST(LowerBound, CheatingWakeupRefutedBySRunWitness) {
  // A "solution" that returns 1 after 2 operations. For n = 64,
  // log_4 64 = 3 > 2, so Theorem 6.1 says it cannot be correct — and the
  // driver must produce the proof's contradiction: an (S,A)-run with
  // |S| <= 4^2 = 16 < 64 in which the winner still returns 1.
  const int n = 64;
  const WakeupLowerBoundReport report =
      analyze_wakeup_run(cheating_wakeup(2), n);
  ASSERT_TRUE(report.terminated);
  EXPECT_FALSE(report.bound_met) << report.summary();
  ASSERT_TRUE(report.s_run_built);
  EXPECT_LE(report.s_size, 16u);
  EXPECT_TRUE(report.s_run_winner_returned_1);
  EXPECT_TRUE(report.wakeup_violation_witnessed) << report.summary();
  EXPECT_TRUE(report.indist.ok) << report.indist.summary();
}

TEST(LowerBound, SwapMixMeetsBound) {
  for (const int n : {4, 16, 64}) {
    const WakeupLowerBoundReport report =
        analyze_wakeup_run(swap_mix_wakeup(), n);
    ASSERT_TRUE(report.terminated);
    EXPECT_TRUE(report.bound_met) << report.summary();
  }
}

TEST(ExpectedComplexity, RandomizedTournamentMeetsBound) {
  const int n = 16;
  const ExpectedComplexityEstimate est = estimate_expected_complexity(
      randomized_tournament_wakeup(), n, /*samples=*/20, /*seed=*/7);
  EXPECT_DOUBLE_EQ(est.termination_rate, 1.0);
  EXPECT_TRUE(est.bound_met) << est.summary();
  EXPECT_GE(est.mean_winner_ops, log4(n));
}

TEST(ExpectedComplexity, FlakyTerminatesWithProbabilityC) {
  // flaky_wakeup(4): each process spins forever with probability 1/4, so
  // a run terminates with probability (3/4)^n.
  const int n = 3;
  AdversaryOptions adversary;
  adversary.max_rounds = 300;
  const ExpectedComplexityEstimate est = estimate_expected_complexity(
      flaky_wakeup(4), n, /*samples=*/60, /*seed=*/21, adversary);
  const double c = 0.75 * 0.75 * 0.75;  // ≈ 0.42
  EXPECT_GT(est.termination_rate, c - 0.25);
  EXPECT_LT(est.termination_rate, c + 0.25);
  EXPECT_TRUE(est.bound_met) << est.summary();
  // Lemma 3.1: worst-case expected complexity >= c * log_4 n.
  EXPECT_GE(est.termination_rate * est.mean_winner_ops, est.bound - 1e9);
}

TEST(ExpectedComplexity, BackoffCounterVariesButRespectsBound) {
  // Run length depends on toss outcomes (random backoff), so this
  // exercises expectation over genuinely different run shapes.
  const int n = 16;
  const ExpectedComplexityEstimate est = estimate_expected_complexity(
      backoff_counter_wakeup(), n, /*samples=*/15, /*seed=*/5);
  EXPECT_DOUBLE_EQ(est.termination_rate, 1.0);
  EXPECT_TRUE(est.bound_met) << est.summary();
  // The counter is a linear-time algorithm: far above the bound.
  EXPECT_GE(est.mean_winner_ops, static_cast<double>(n));
}

TEST(ExpectedComplexity, MinimumAcrossSamplesRespectsBound) {
  const int n = 64;
  const ExpectedComplexityEstimate est = estimate_expected_complexity(
      randomized_tournament_wakeup(), n, /*samples=*/10, /*seed=*/3);
  EXPECT_GE(static_cast<double>(est.min_winner_ops), log4(n))
      << est.summary();
}

}  // namespace
}  // namespace llsc
