// Deterministic crash recovery on the simulator substrate.
//
// A crash entry with a RecoverySpec turns crash-stop into crash-rejoin:
// System::maybe_recover consumes the pending recovery, and the victim
// either resumes its suspended frame in place (amnesia = false) or loses
// its private coroutine state and restarts the body as the next
// incarnation (amnesia = true) with its LL reservations invalidated. The
// decisions are pure in (plan.seed, proc, incarnation), so a crash+rejoin
// schedule replays bit-for-bit — the property the cross-substrate sweep
// (hw_fault_diff_test) extends to real threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hw/fault.h"
#include "memory/rmw.h"
#include "objects/leader.h"
#include "objects/tas.h"
#include "runtime/system.h"
#include "runtime/toss.h"
#include "sched/scheduler.h"
#include "wakeup/algorithms.h"
#include "wakeup/spec.h"

namespace llsc {
namespace {

constexpr int kIncrements = 8;

// kIncrements whole-op increments: the register always equals the total
// executed-op count, so recovery accounting is directly observable.
SimTask rmw_increment_body(ProcCtx ctx, ProcId, int) {
  static const auto inc = make_rmw("inc", [](const Value& v) {
    return Value::of_u64(v.is_nil() ? 1 : v.as_u64() + 1);
  });
  for (int k = 0; k < kIncrements; ++k) {
    (void)co_await ctx.rmw(0, inc);
  }
  co_return Value::of_u64(1);
}

// Process 0's first incarnation takes an LL reservation and dies before
// its next op; the restarted incarnation immediately tries SC without a
// fresh LL. The reservation must have died with the old incarnation —
// adopting it would let a ghost reservation commit.
SimTask reservation_probe_body(ProcCtx ctx, ProcId i, int) {
  if (i == 0 && ctx.incarnation() == 0) {
    (void)co_await ctx.ll(0);
    (void)co_await ctx.ll(0);  // never executes: the crash fires first
    co_return Value::of_u64(7);
  }
  const ScResult r = co_await ctx.sc(0, Value::of_u64(99));
  co_return Value::of_u64(r.ok ? 1 : 0);
}

// Drive every runnable process round-robin until the system halts; a
// crashed process with a recovery owed stays runnable and rejoins inside
// System::step.
void drive(System& sys, int n) {
  while (!sys.all_halted()) {
    for (ProcId p = 0; p < n; ++p) {
      if (sys.runnable(p)) sys.step(p);
    }
  }
}

struct SimObserved {
  std::vector<std::uint64_t> proc_ops;
  std::uint64_t reg = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t recovery_units = 0;
};

SimObserved run_increments(int n, const FaultPlan& plan) {
  System sys(n, &rmw_increment_body);
  FaultInjector injector(plan, n);
  sys.set_fault_injector(&injector);
  drive(sys, n);
  SimObserved obs;
  for (ProcId p = 0; p < n; ++p) {
    obs.proc_ops.push_back(sys.process(p).shared_ops());
  }
  obs.reg = sys.memory().peek_value(0).as_u64();
  obs.recoveries = injector.stats().recoveries;
  obs.recovery_units = injector.stats().recovery_units;
  return obs;
}

// --- rejoin semantics ----------------------------------------------------

// Amnesia: the victim restarts the whole body as incarnation 1 on top of
// the ops already charged, so it executes after_ops + kIncrements total
// and every executed increment landed exactly once in the register.
TEST(RecoveryTest, AmnesiacRestartReplaysWholeBodyCumulatively) {
  const int n = 3;
  FaultPlan plan;
  plan.seed = 5;
  CrashSpec crash{.proc = 0, .after_ops = 3};
  crash.recovery.delay_units = 4;
  crash.recovery.max_restarts = 1;
  crash.recovery.amnesia = true;
  plan.crashes.push_back(crash);

  System sys(n, &rmw_increment_body);
  FaultInjector injector(plan, n);
  sys.set_fault_injector(&injector);
  drive(sys, n);

  EXPECT_EQ(sys.num_crashed(), 0);
  EXPECT_EQ(sys.process(0).incarnation(), 1u);
  EXPECT_EQ(sys.process(0).shared_ops(),
            3u + static_cast<std::uint64_t>(kIncrements));
  EXPECT_EQ(sys.process(1).shared_ops(),
            static_cast<std::uint64_t>(kIncrements));
  const std::uint64_t executed = (3 + kIncrements) + 2 * kIncrements;
  EXPECT_EQ(sys.memory().peek_value(0).as_u64(), executed);
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().recoveries, 1u);
  EXPECT_GT(injector.stats().recovery_units, 0u);
}

// Pause-and-resume: the frame survives, the victim finishes its remaining
// increments in place — kIncrements total, same incarnation.
TEST(RecoveryTest, PauseAndResumeFinishesRemainingOpsInPlace) {
  const int n = 2;
  FaultPlan plan;
  plan.seed = 6;
  CrashSpec crash{.proc = 1, .after_ops = 5};
  crash.recovery.delay_units = 2;
  crash.recovery.max_restarts = 1;
  crash.recovery.amnesia = false;
  plan.crashes.push_back(crash);

  System sys(n, &rmw_increment_body);
  FaultInjector injector(plan, n);
  sys.set_fault_injector(&injector);
  drive(sys, n);

  EXPECT_EQ(sys.num_crashed(), 0);
  EXPECT_EQ(sys.process(1).incarnation(), 0u);
  EXPECT_EQ(sys.process(1).shared_ops(),
            static_cast<std::uint64_t>(kIncrements));
  EXPECT_EQ(sys.memory().peek_value(0).as_u64(),
            static_cast<std::uint64_t>(2 * kIncrements));
  EXPECT_EQ(injector.stats().recoveries, 1u);
}

// The whole crash+rejoin schedule is a pure function of the plan: two
// independent systems under the same plan produce identical op counts,
// register state, and recovery accounting.
TEST(RecoveryTest, CrashRejoinScheduleReplaysBitForBit) {
  FaultPlan plan;
  plan.seed = 0xA11CE;
  CrashSpec crash{.proc = 2, .after_ops = 4};
  crash.recovery.delay_units = 6;
  crash.recovery.max_restarts = 2;
  crash.recovery.amnesia = true;
  plan.crashes.push_back(crash);

  const SimObserved a = run_increments(4, plan);
  const SimObserved b = run_increments(4, plan);
  EXPECT_EQ(a.proc_ops, b.proc_ops);
  EXPECT_EQ(a.reg, b.reg);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.recovery_units, b.recovery_units);
}

// The dead incarnation's LL reservation is invalidated, never adopted: an
// SC by the restarted incarnation without a fresh LL must fail and write
// nothing.
TEST(RecoveryTest, DeadIncarnationReservationIsInvalidatedNotAdopted) {
  const int n = 1;
  FaultPlan plan;
  plan.seed = 9;
  CrashSpec crash{.proc = 0, .after_ops = 1};
  crash.recovery.delay_units = 1;
  crash.recovery.max_restarts = 1;
  crash.recovery.amnesia = true;
  plan.crashes.push_back(crash);

  System sys(n, &reservation_probe_body);
  FaultInjector injector(plan, n);
  sys.set_fault_injector(&injector);
  drive(sys, n);

  ASSERT_TRUE(sys.process(0).done());
  EXPECT_EQ(sys.process(0).result().as_u64(), 0u)
      << "SC without a fresh LL succeeded: the dead incarnation's "
         "reservation was adopted";
  EXPECT_TRUE(sys.memory().peek_value(0).is_nil());
}

// --- recoverable wakeup --------------------------------------------------

// Tournament wakeup under a recoverable two-process crash storm: every
// victim rejoins (amnesiac restart from the leaf), the run still
// terminates with >= 1 winner and all base wakeup conditions intact, and
// the checker reports the restarts it can see in the incarnation
// counters.
TEST(RecoveryTest, RecoverableWakeupSurvivesAmnesiacCrashStorm) {
  const int n = 4;
  FaultPlan plan;
  plan.seed = 31;
  for (const ProcId victim : {1, 2}) {
    CrashSpec crash{.proc = victim,
                    .after_ops = 2 + static_cast<std::uint64_t>(victim)};
    crash.recovery.delay_units = 3;
    crash.recovery.max_restarts = 1;
    crash.recovery.amnesia = true;
    plan.crashes.push_back(crash);
  }

  System sys(n, tournament_wakeup());
  FaultInjector injector(plan, n);
  sys.set_fault_injector(&injector);
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1 << 20).all_terminated);

  const RecoverableWakeupCheckResult res = check_recoverable_wakeup_run(sys);
  EXPECT_TRUE(res.ok) << res.violations.front();
  EXPECT_GE(res.num_winners, 1);
  EXPECT_EQ(res.num_restarts, 2u);
  EXPECT_EQ(injector.stats().recoveries, 2u);
}

// Without a recovery the victim stays down, and the recoverable checker
// names exactly that: a process still crashed at the end of the run.
TEST(RecoveryTest, CrashStopWithoutRecoveryViolatesRecoverableSpec) {
  const int n = 3;
  FaultPlan plan;
  plan.seed = 12;
  plan.crashes.push_back(CrashSpec{.proc = 1, .after_ops = 2});

  System sys(n, tournament_wakeup());
  FaultInjector injector(plan, n);
  sys.set_fault_injector(&injector);
  RoundRobinScheduler sched;
  sched.run(sys, 1 << 20);

  const RecoverableWakeupCheckResult res = check_recoverable_wakeup_run(sys);
  EXPECT_FALSE(res.ok);
  bool names_still_crashed = false;
  for (const std::string& v : res.violations) {
    if (v.find("still crashed") != std::string::npos) {
      names_still_crashed = true;
    }
  }
  EXPECT_TRUE(names_still_crashed);
  EXPECT_EQ(res.num_restarts, 0u);
}

// --- recoverable test-and-set and leader election ------------------------

// The amnesia hazard specific to one-shot objects: a crashed WINNER's
// restarted incarnation replays the whole protocol from the top, and a
// naive claim register would let it (or someone else) win a second time.
// The strict protocol's claim register recognizes its own writer, so the
// sweep below — crash process 0 at EVERY early op index, amnesiac rejoin,
// all n — must always end with exactly one winner, whoever the victim
// happened to be when the crash fired.
TEST(RecoveryTest, AmnesiacTasRestartNeverElectsTwoWinners) {
  std::uint64_t total_restarts = 0;
  for (const int n : {1, 3, 5}) {
    for (std::uint64_t after_ops = 1; after_ops <= 12; ++after_ops) {
      FaultPlan plan;
      plan.seed = 0x7A5C + after_ops;
      CrashSpec crash{.proc = 0, .after_ops = after_ops};
      crash.recovery.delay_units = 2;
      crash.recovery.max_restarts = 1;
      crash.recovery.amnesia = true;
      plan.crashes.push_back(crash);

      auto tosses = std::make_shared<SeededTossAssignment>(after_ops);
      System sys(n, randomized_tas_body(), tosses);
      FaultInjector injector(plan, n);
      sys.set_fault_injector(&injector);
      RoundRobinScheduler sched;
      ASSERT_TRUE(sched.run(sys, 1 << 20).all_terminated)
          << "n=" << n << " after_ops=" << after_ops;

      const RecoverableTasCheckResult res = check_recoverable_tas_run(sys);
      EXPECT_TRUE(res.ok) << "n=" << n << " after_ops=" << after_ops << ": "
                          << res.summary();
      EXPECT_EQ(res.num_winners, 1)
          << "n=" << n << " after_ops=" << after_ops;
      EXPECT_EQ(res.num_restarts, injector.stats().recoveries);
      total_restarts += res.num_restarts;
    }
  }
  // The sweep actually crashed processes (late after_ops values may land
  // past a short run's end; the early ones cannot).
  EXPECT_GT(total_restarts, 10u);
}

// Leader election on top: an amnesiac restart — of the winner after its
// claim, of the winner before it, or of any loser — must never produce
// two processes that believe different leaders. Two victims rejoin per
// run and the recoverable checker enforces agreement + claim/announce
// consistency.
TEST(RecoveryTest, AmnesiacLeaderRestartsAgreeOnOneLeader) {
  std::uint64_t total_restarts = 0;
  for (const int n : {2, 4, 6}) {
    for (std::uint64_t after_ops = 1; after_ops <= 10; ++after_ops) {
      FaultPlan plan;
      plan.seed = 0x1EAD + after_ops;
      for (const ProcId victim : {0, 1}) {
        CrashSpec crash{.proc = victim,
                        .after_ops = after_ops +
                                     static_cast<std::uint64_t>(victim)};
        crash.recovery.delay_units = 1 + static_cast<std::uint64_t>(victim);
        crash.recovery.max_restarts = 1;
        crash.recovery.amnesia = true;
        plan.crashes.push_back(crash);
      }

      auto tosses = std::make_shared<SeededTossAssignment>(0xCAFE + after_ops);
      System sys(n, leader_election_body(), tosses);
      FaultInjector injector(plan, n);
      sys.set_fault_injector(&injector);
      RoundRobinScheduler sched;
      ASSERT_TRUE(sched.run(sys, 1 << 20).all_terminated)
          << "n=" << n << " after_ops=" << after_ops;

      const RecoverableLeaderCheckResult res =
          check_recoverable_leader_run(sys);
      EXPECT_TRUE(res.ok) << "n=" << n << " after_ops=" << after_ops << ": "
                          << res.summary();
      EXPECT_GE(res.leader, 0) << "n=" << n << " after_ops=" << after_ops;
      EXPECT_LT(res.leader, n) << "n=" << n << " after_ops=" << after_ops;
      EXPECT_EQ(res.num_restarts, injector.stats().recoveries);
      total_restarts += res.num_restarts;
    }
  }
  EXPECT_GT(total_restarts, 20u);
}

// A crash-stopped TAS process (no recovery) leaves the run incomplete:
// the plain checker still certifies at-most-one-winner on the partial
// run, and the recoverable checker names the still-crashed process.
TEST(RecoveryTest, CrashStoppedTasStillHasAtMostOneWinner) {
  const int n = 4;
  FaultPlan plan;
  plan.seed = 0xDEAD;
  plan.crashes.push_back(CrashSpec{.proc = 2, .after_ops = 3});

  auto tosses = std::make_shared<SeededTossAssignment>(0xDEAD);
  System sys(n, randomized_tas_body(), tosses);
  FaultInjector injector(plan, n);
  sys.set_fault_injector(&injector);
  RoundRobinScheduler sched;
  sched.run(sys, 1 << 20);

  const TasCheckResult partial = check_tas_run(sys);
  EXPECT_LE(partial.num_winners, 1);
  const RecoverableTasCheckResult rec = check_recoverable_tas_run(sys);
  EXPECT_FALSE(rec.ok);
  bool names_still_crashed = false;
  for (const std::string& v : rec.violations) {
    if (v.find("still crashed") != std::string::npos) {
      names_still_crashed = true;
    }
  }
  EXPECT_TRUE(names_still_crashed);
}

}  // namespace
}  // namespace llsc
