// Adversarial fault placement (hw/fault_adversary.h): strategy-level
// determinism, DecisionTrace JSON round-trip, record/replay across both
// substrates, and clean degradation at budget exhaustion.
//
// The record/replay contract under test: an adaptive run's decisions are
// a function of the observed history (schedule-dependent on real
// threads), but the recorded DecisionTrace replays through a pure
// (proc, op-index) lookup — so a trace recorded anywhere reproduces the
// same injected-failure schedule everywhere.
#include "hw/fault_adversary.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/lower_bound.h"
#include "core/proc_set.h"
#include "hw/fault.h"
#include "hw/fault_scenarios.h"
#include "hw/hw_executor.h"
#include "memory/storage_policy.h"
#include "memory/value.h"

namespace llsc {
namespace {

constexpr int kN = 4;
constexpr int kMaxRounds = 1 << 12;

McSampleOutcome run_sim(const std::string& scenario, int n,
                        std::uint64_t toss_seed, const FaultPlan& plan) {
  AdversaryOptions adversary;
  adversary.max_rounds = kMaxRounds;
  return run_mc_sample(fault_scenario(scenario), n, toss_seed, adversary,
                       plan.enabled() ? &plan : nullptr);
}

HwRunResult run_hw(const std::string& scenario, int n, std::uint64_t seed,
                   const FaultPlan& plan) {
  HwRunOptions options;
  options.seed = seed;
  options.fault = plan.enabled() ? &plan : nullptr;
  HwExecutor exec(options);
  return exec.run(n, fault_scenario(scenario));
}

PendingOp make_op(OpKind kind, RegId reg) {
  PendingOp op;
  op.kind = kind;
  op.reg = reg;
  return op;
}

OpResult make_result(bool flag) {
  OpResult r;
  r.flag = flag;
  return r;
}

// Feed one scripted history (the kind the injector would deliver) into an
// AdaptiveStrategy and return the decide() outcomes.
std::vector<bool> drive_script(AdaptiveStrategy& s) {
  const PendingOp ll = make_op(OpKind::kLL, 0);
  const PendingOp sc = make_op(OpKind::kSC, 0);
  std::vector<bool> outcomes;
  // Everyone links register 0.
  for (ProcId p = 0; p < kN; ++p) s.observe(p, 0, ll, make_result(true));
  // p0 is the lowest-id argmax of the all-singleton knowledge state, so
  // only its SCs draw budget.
  outcomes.push_back(s.decide(0, 1, sc, 0));   // true: target, live link
  outcomes.push_back(s.decide(1, 1, sc, 0));   // false: not the target
  s.observe(0, 1, sc, make_result(false));     // p0's forced failure
  s.observe(1, 1, sc, make_result(true));      // p1 succeeds, publishes {1}
  // p0 relinks and learns {1} from the register: strictly most
  // knowledgeable now, still the target.
  s.observe(0, 2, ll, make_result(true));
  outcomes.push_back(s.decide(0, 3, sc, 0));   // true: still target
  s.observe(0, 3, sc, make_result(false));
  // p0's link is dead (no LL since the failure): no budget wasted.
  outcomes.push_back(s.decide(0, 4, sc, 0));   // false: link not live
  return outcomes;
}

TEST(AdaptiveStrategyTest, DecisionsDeterministicGivenObservedHistory) {
  FaultPlan plan;
  plan.strategy = FaultStrategyKind::kAdaptive;
  plan.fault_budget = 3;
  AdaptiveStrategy a(plan, kN);
  AdaptiveStrategy b(plan, kN);
  const std::vector<bool> got_a = drive_script(a);
  const std::vector<bool> got_b = drive_script(b);
  EXPECT_EQ(got_a, got_b);
  const std::vector<bool> expected = {true, false, true, false};
  EXPECT_EQ(got_a, expected);

  DecisionTrace ta;
  DecisionTrace tb;
  a.snapshot_trace(&ta);
  b.snapshot_trace(&tb);
  EXPECT_EQ(ta, tb);
  ASSERT_EQ(ta.size(), 2u);
  EXPECT_EQ(ta.decisions[0].proc, 0);
  EXPECT_EQ(ta.decisions[0].op_index, 1u);
  EXPECT_EQ(ta.decisions[0].score, 1u);  // singleton knowledge at first hit
  EXPECT_EQ(ta.decisions[1].proc, 0);
  EXPECT_EQ(ta.decisions[1].op_index, 3u);
  EXPECT_EQ(ta.decisions[1].score, 2u);  // learned {1} from the register
  EXPECT_EQ(a.current_target(), 0);
  EXPECT_EQ(a.knowledge(0), 2u);
}

TEST(AdaptiveStrategyTest, RunsAreDeterministicOnTheSimulator) {
  FaultPlan plan;
  plan.seed = 11;
  plan.strategy = FaultStrategyKind::kAdaptive;
  plan.fault_budget = 6;
  const McSampleOutcome a = run_sim("fixed_ll_sc", kN, 42, plan);
  const McSampleOutcome b = run_sim("fixed_ll_sc", kN, 42, plan);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.proc_ops, b.proc_ops);
  EXPECT_EQ(a.decision_trace, b.decision_trace);
  // The budget was actually spent: adaptive placement is not a no-op.
  EXPECT_EQ(a.decision_trace.size(), 6u);
}

TEST(DecisionTraceTest, JsonRoundTripsU64Exact) {
  FaultPlan plan;
  plan.seed = 0x9E3779B97F4A7C15ull;  // > 2^53: dies in a double round-trip
  plan.strategy = FaultStrategyKind::kAdaptive;
  plan.fault_budget = (1ull << 60) + 3;
  plan.burst_len = 7;
  plan.burst_period = 32;
  FaultDecision d0;
  d0.proc = 2;
  d0.op_index = (1ull << 53) + 1;  // only exact integer parsing keeps this
  d0.is_vl = false;
  d0.score = (1ull << 40) + 9;
  FaultDecision d1;
  d1.proc = 3;
  d1.op_index = 17;
  d1.is_vl = true;
  d1.score = 4;
  plan.trace.decisions = {d0, d1};

  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::from_json(plan.to_json(), &parsed, &error)) << error;
  EXPECT_EQ(parsed, plan);
  EXPECT_EQ(parsed.trace.decisions[0].op_index, (1ull << 53) + 1);
}

TEST(DecisionTraceTest, ObliviousPlansKeepTheirSchema) {
  // Plans that don't use adversarial placement must serialize without any
  // of the new optional keys — byte-stable with the PR 3 schema.
  FaultPlan plan;
  plan.seed = 7;
  plan.sc_fail_rate = 0.5;
  plan.crashes.push_back(CrashSpec{.proc = 1, .after_ops = 3});
  const std::string json = plan.to_json();
  EXPECT_EQ(json.find("strategy"), std::string::npos);
  EXPECT_EQ(json.find("fault_budget"), std::string::npos);
  EXPECT_EQ(json.find("burst"), std::string::npos);
  EXPECT_EQ(json.find("trace"), std::string::npos);
  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::from_json(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed, plan);
}

TEST(AdaptiveReplayTest, RecordedPlanReplaysBitForBitOnBothSubstrates) {
  FaultPlan record_plan;
  record_plan.seed = 13;
  record_plan.strategy = FaultStrategyKind::kAdaptive;
  record_plan.fault_budget = 6;
  const McSampleOutcome recorded = run_sim("fixed_ll_sc", kN, 42, record_plan);
  ASSERT_FALSE(recorded.decision_trace.empty());

  // Replay mode: same plan with the trace embedded. The strategy field
  // stays kAdaptive — a non-empty trace takes precedence, which is what
  // makes a serialized adaptive artifact replayable as-is.
  FaultPlan replay_plan = record_plan;
  replay_plan.trace = recorded.decision_trace;

  // Simulator: the whole outcome must reproduce exactly.
  const McSampleOutcome sim = run_sim("fixed_ll_sc", kN, 42, replay_plan);
  EXPECT_EQ(sim.status, recorded.status);
  EXPECT_EQ(sim.proc_ops, recorded.proc_ops);
  EXPECT_EQ(sim.decision_trace, recorded.decision_trace);

  // Hw backend: fixed_ll_sc's per-process op streams are schedule-
  // independent, so the traced decisions land on the same (proc, k)
  // ops and the injected counters match the trace exactly.
  const HwRunResult hw = run_hw("fixed_ll_sc", kN, 42, replay_plan);
  EXPECT_EQ(hw.status, recorded.status);
  EXPECT_EQ(hw.shared_ops, recorded.proc_ops);
  EXPECT_EQ(hw.fault.injected_sc_failures, recorded.decision_trace.size());
  EXPECT_EQ(hw.decision_trace, recorded.decision_trace);
}

TEST(AdaptiveBudgetTest, ExhaustionDegradesToNoFaultCleanly) {
  // A retry-loop workload absorbs the whole budget and then runs fault-
  // free to completion: exact results, exactly budget injections.
  FaultPlan plan;
  plan.seed = 3;
  plan.strategy = FaultStrategyKind::kAdaptive;
  plan.fault_budget = 8;
  const HwRunResult r = run_hw("counter", kN, 1, plan);
  EXPECT_EQ(r.status, RunStatus::kClean);
  EXPECT_EQ(r.fault.injected_sc_failures, 8u);
  EXPECT_EQ(r.decision_trace.size(), 8u);
}

TEST(AdaptiveBudgetTest, ZeroBudgetAdaptivePlanInjectsNothing) {
  FaultPlan plan;
  plan.strategy = FaultStrategyKind::kAdaptive;
  plan.fault_budget = 0;
  // No budget, no rates, no crashes: the plan is not even "enabled", so
  // drivers skip the injector entirely.
  EXPECT_FALSE(plan.enabled());
  const HwRunResult r = run_hw("fixed_ll_sc", kN, 1, plan);
  EXPECT_EQ(r.status, RunStatus::kClean);
  EXPECT_EQ(r.fault.injected_sc_failures, 0u);
  EXPECT_TRUE(r.decision_trace.empty());
}

TEST(ObliviousStrategyTest, UncappedBudgetedPathMatchesInlinePath) {
  // The strategy-seam oblivious roll must be bit-for-bit the inline
  // oblivious roll (same hash, same salt): a plan that differs only by a
  // never-hit budget cap draws the identical schedule.
  FaultPlan inline_plan;
  inline_plan.seed = 99;
  inline_plan.sc_fail_rate = 0.5;
  FaultPlan budgeted = inline_plan;
  budgeted.fault_budget = 1u << 20;  // forces the strategy path, never hit

  const McSampleOutcome a = run_sim("fixed_ll_sc", kN, 7, inline_plan);
  const McSampleOutcome b = run_sim("fixed_ll_sc", kN, 7, budgeted);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.proc_ops, b.proc_ops);
  EXPECT_TRUE(a.decision_trace.empty());   // inline path records nothing
  EXPECT_FALSE(b.decision_trace.empty());  // strategy path records all
}

// --- KnowledgeModel seam -------------------------------------------------

TEST(KnowledgeModelTest, ObserveFollowsTheSectionFiveRules) {
  KnowledgeModel m(4);
  for (ProcId p = 0; p < 4; ++p) {
    EXPECT_EQ(m.knowledge(p), 1u) << "everyone starts knowing only itself";
  }
  const PendingOp ll0 = make_op(OpKind::kLL, 0);
  const PendingOp sc0 = make_op(OpKind::kSC, 0);

  // LL links and learns (an empty register teaches nothing).
  m.observe(0, ll0, make_result(true));
  m.observe(1, ll0, make_result(true));
  EXPECT_TRUE(m.has_live_link(0, 0));
  EXPECT_TRUE(m.has_live_link(1, 0));
  EXPECT_EQ(m.knowledge(0), 1u);

  // p1's successful SC publishes know(p1) = {1} and consumes every
  // outstanding reservation on the register — including p0's.
  m.observe(1, sc0, make_result(true));
  EXPECT_FALSE(m.has_live_link(0, 0));
  EXPECT_FALSE(m.has_live_link(1, 0));

  // p0 relinks and now learns {1} from the register: knowledge 2.
  m.observe(0, ll0, make_result(true));
  EXPECT_EQ(m.knowledge(0), 2u);
  EXPECT_EQ(m.max_knowledge(), 2u);
  EXPECT_EQ(m.argmax_knowledge(), 0);

  // A FAILED SC still reports the current value (p2 learns) but only
  // unlinks the failing process itself.
  m.observe(2, ll0, make_result(true));
  m.observe(2, sc0, make_result(false));
  EXPECT_FALSE(m.has_live_link(2, 0));
  EXPECT_TRUE(m.has_live_link(0, 0));
  EXPECT_EQ(m.knowledge(2), 2u);  // {1, 2}

  // A failed validate kills the link; a successful one keeps it.
  const PendingOp vl0 = make_op(OpKind::kValidate, 0);
  m.observe(0, vl0, make_result(true));
  EXPECT_TRUE(m.has_live_link(0, 0));
  m.observe(0, vl0, make_result(false));
  EXPECT_FALSE(m.has_live_link(0, 0));

  // Swap: the swapper learns the old knowledge, then determines the
  // register — afterwards the register teaches know(p3).
  const PendingOp swap5 = make_op(OpKind::kSwap, 5);
  m.observe(3, swap5, make_result(true));
  EXPECT_EQ(m.knowledge(3), 1u);  // empty register taught nothing
  m.observe(0, make_op(OpKind::kLL, 5), make_result(true));
  EXPECT_EQ(m.knowledge(0), 3u);  // {0, 1} |= {3}

  // Move: destination gets source knowledge plus the mover's; the mover
  // itself learns nothing (process rule 2).
  PendingOp mv = make_op(OpKind::kMove, 6);
  mv.src = 5;  // know(R5) = {3}
  const std::size_t before = m.knowledge(2);
  m.observe(2, mv, make_result(true));
  EXPECT_EQ(m.knowledge(2), before);
  m.observe(1, make_op(OpKind::kLL, 6), make_result(true));
  EXPECT_EQ(m.knowledge(1), 3u);  // {1} |= {3} ∪ {1, 2}
}

TEST(KnowledgeModelTest, AmnesiaResetsToSingletonAndDropsLinks) {
  KnowledgeModel m(3);
  const PendingOp ll0 = make_op(OpKind::kLL, 0);
  m.observe(1, make_op(OpKind::kSwap, 0), make_result(true));
  m.observe(0, ll0, make_result(true));
  ASSERT_EQ(m.knowledge(0), 2u);
  ASSERT_TRUE(m.has_live_link(0, 0));

  m.on_amnesia(0);
  EXPECT_EQ(m.knowledge(0), 1u);
  EXPECT_FALSE(m.has_live_link(0, 0));
  // Everyone else is untouched.
  EXPECT_EQ(m.knowledge(1), 1u);
  EXPECT_EQ(m.argmax_knowledge(), 0);  // all singletons again, lowest id
}

// The per-object hook: a model that knows the OBJECT's semantics leak more
// than the raw op stream. Here, any op on register 7 is "the announce
// register of a leader object whose response names every participant", so
// the actor learns the full universe. The adversary's budget then chases
// that process even though the raw Section 5.3 rules would not rank it.
class LeakyAnnounceModel final : public KnowledgeModel {
 public:
  using KnowledgeModel::KnowledgeModel;

  void observe(ProcId p, const PendingOp& op, const OpResult& r) override {
    KnowledgeModel::observe(p, op, r);
    if (op.reg == 7) {
      set_reg_knowledge(7, ProcSet::full(num_processes()));
      learn_from(p, 7);
    }
  }
};

TEST(KnowledgeModelTest, InjectedModelRedirectsTheAdaptiveBudget) {
  FaultPlan plan;
  plan.strategy = FaultStrategyKind::kAdaptive;
  plan.fault_budget = 2;

  const PendingOp ll0 = make_op(OpKind::kLL, 0);
  const PendingOp sc0 = make_op(OpKind::kSC, 0);
  const PendingOp ll7 = make_op(OpKind::kLL, 7);

  // Same observed history through both models: everyone links R0, then
  // p2 additionally loads the leaky announce register.
  const auto feed = [&](AdaptiveStrategy& s) {
    for (ProcId p = 0; p < kN; ++p) s.observe(p, 0, ll0, make_result(true));
    s.observe(2, 1, ll7, make_result(true));
  };

  AdaptiveStrategy plain(plan, kN);
  feed(plain);
  // Raw rules: R7 was empty, p2 learned nothing, p0 is the argmax.
  EXPECT_TRUE(plain.decide(0, 1, sc0, 0));
  EXPECT_FALSE(plain.decide(2, 2, sc0, 0));

  AdaptiveStrategy leaky(plan, kN,
                         std::make_unique<LeakyAnnounceModel>(kN));
  feed(leaky);
  // Object-aware rules: p2 now knows everyone and draws the budget.
  EXPECT_FALSE(leaky.decide(0, 1, sc0, 0));
  EXPECT_TRUE(leaky.decide(2, 2, sc0, 0));
  EXPECT_EQ(leaky.current_target(), 2);
  EXPECT_EQ(leaky.knowledge(2), static_cast<std::size_t>(kN));
}

// --- E13 byte-stability regression ---------------------------------------

std::string canon_trace(const DecisionTrace& t) {
  if (t.empty()) return "<empty>";
  std::string out;
  for (const FaultDecision& d : t.decisions) {
    out += "(" + std::to_string(d.proc) + "," + std::to_string(d.op_index) +
           "," + std::string(d.is_vl ? "1" : "0") + "," +
           std::to_string(d.score) + ")";
  }
  return out;
}

// Golden DecisionTraces captured from the E13 adaptive configuration
// BEFORE the KnowledgeModel seam was extracted from AdaptiveStrategy.
// The seam is a pure refactor: these bytes pin that claim. If this test
// fails, the adaptive adversary's schedule drifted and every recorded
// E13 artifact in EXPERIMENTS.md is silently stale — treat a diff here
// as an interface break, not a test to update casually.
TEST(KnowledgeModelGolden, E13AdaptiveDecisionTracesAreByteStable) {
  struct GoldenCase {
    const char* scenario;
    int n;
    std::uint64_t toss_seed;
    std::uint64_t budget;
    const char* canon;  // "(proc,op_index,is_vl,score)" concatenated
  };
  const GoldenCase kCases[] = {
      {"randomized_tournament", 6, 101, 4, "(0,4,0,2)(0,9,0,4)"},
      {"randomized_tournament", 5, 202, 6, "(0,4,0,2)(0,8,0,2)"},
      {"tournament", 6, 303, 4, "(0,4,0,2)(0,8,0,2)(0,12,0,4)(0,16,0,4)"},
      {"fixed_ll_sc", 4, 404, 5,
       "(0,1,0,1)(0,3,0,2)(0,5,0,2)(0,7,0,2)(0,9,0,2)"},
      {"counter", 4, 505, 3, "(0,1,0,1)(0,3,0,2)(0,5,0,3)"},
  };
  for (const GoldenCase& c : kCases) {
    FaultPlan plan;
    plan.seed = 0xE13;
    plan.strategy = FaultStrategyKind::kAdaptive;
    plan.fault_budget = c.budget;
    AdversaryOptions adversary;
    adversary.max_rounds = 1 << 14;
    const McSampleOutcome out =
        run_mc_sample(fault_scenario(c.scenario), c.n, c.toss_seed, adversary,
                      &plan, StoragePolicy::kBoxed);
    EXPECT_TRUE(out.terminated) << c.scenario;
    EXPECT_EQ(canon_trace(out.decision_trace), c.canon)
        << c.scenario << " n=" << c.n << " toss_seed=" << c.toss_seed;
  }
}

TEST(BurstStrategyTest, WindowsAreCorrelatedAndReplayAcrossSubstrates) {
  // fixed_ll_sc: LL at even k, SC at odd k. Window k % 4 < 2 catches the
  // SCs at k = 1, 5, 9, 13 — four per process, every one recorded.
  FaultPlan plan;
  plan.seed = 5;
  plan.strategy = FaultStrategyKind::kBurst;
  plan.burst_len = 2;
  plan.burst_period = 4;
  const McSampleOutcome sim = run_sim("fixed_ll_sc", kN, 21, plan);
  EXPECT_EQ(sim.decision_trace.size(), static_cast<std::size_t>(4 * kN));
  for (const FaultDecision& d : sim.decision_trace.decisions) {
    EXPECT_EQ(d.op_index % 2, 1u) << "burst hit a non-SC op";
    EXPECT_LT(d.op_index % 4, 2u) << "decision outside the burst window";
  }
  // Burst decisions are pure in (p, k), so the hw backend draws the very
  // same schedule without needing the trace.
  const HwRunResult hw = run_hw("fixed_ll_sc", kN, 21, plan);
  EXPECT_EQ(hw.status, sim.status);
  EXPECT_EQ(hw.shared_ops, sim.proc_ops);
  EXPECT_EQ(hw.decision_trace, sim.decision_trace);
}

}  // namespace
}  // namespace llsc
