// Cross-substrate differential fuzzing of the fault layer.
//
// The fixed_* scenarios execute a schedule-independent per-process op
// stream (fault_scenarios.h), so for any fault plan whose decisions are
// pure in (proc, op-index) — oblivious hash, burst window, crash spec,
// trace replay — the simulator and the hw backend must agree on the
// whole observable contract: run taxonomy, per-process op counts, and
// the minimum winner op count. This test sweeps ~200 random
// (seed, n, strategy) triples across both substrates and asserts exactly
// that. The adaptive strategy is schedule-DEPENDENT, so its legs go
// through record-on-sim / trace-replay-on-hw — the same loop CI runs via
// examples/fault_replay.
//
// The sweep is parameterized over workload, alternating the raw fixed_*
// register streams with the two fixed-shape universal-construction
// scenarios (uc_single_register, uc_combining — fault_scenarios.h) and
// the two fixed-shape object protocols (tas_fixed, leader_fixed —
// objects/tas.h, objects/leader.h): the same contract must hold when the
// contended SCs come from a whole construction's announce/toggle/install
// protocol or from a test-and-set's splitter/tournament/claim pipeline.
// uc_combining, tas_fixed, and leader_fixed triples ALWAYS go through
// the record/replay path, so those workloads replay bit-for-bit from
// recorded DecisionTraces on both substrates.
//
// Every triple additionally runs an OVERSUBSCRIBED leg: the same n
// processes multiplexed as coroutines on a two-thread pool
// (hw/oversub_executor.h) must reproduce the identical observable
// contract — including bit-for-bit DecisionTrace replays — because fault
// decisions and toss streams are keyed by (proc, op-index), never by
// carrier thread.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/lower_bound.h"
#include "hw/fault.h"
#include "hw/fault_scenarios.h"
#include "hw/hw_executor.h"
#include "hw/oversub_executor.h"
#include "memory/storage_policy.h"
#include "util/rng.h"

namespace llsc {
namespace {

constexpr int kTriples = 200;
constexpr int kMaxRounds = 1 << 12;

// The whole sweep runs once per register-storage policy: fault decisions
// are pure in (proc, op-index) and a forced-failed SC substitutes a
// read-only probe, so the cross-substrate contract must be policy-
// independent (memory/storage_policy.h).
class HwFaultDiffTest : public ::testing::TestWithParam<StoragePolicy> {};

INSTANTIATE_TEST_SUITE_P(
    Storage, HwFaultDiffTest,
    ::testing::Values(StoragePolicy::kBoxed, StoragePolicy::kInline),
    [](const ::testing::TestParamInfo<StoragePolicy>& info) {
      return info.param == StoragePolicy::kBoxed ? "Boxed" : "Inline";
    });

// Taxonomy + op counts + min winner ops: the replay contract, reduced the
// same way on both substrates.
struct Observed {
  RunStatus status = RunStatus::kClean;
  std::vector<std::uint64_t> proc_ops;
  std::uint64_t min_winner_ops = ~std::uint64_t{0};
  DecisionTrace trace;
};

Observed observe_sim(const ProcBody& body, int n, std::uint64_t toss_seed,
                     const FaultPlan& plan, StoragePolicy storage) {
  AdversaryOptions adversary;
  adversary.max_rounds = kMaxRounds;
  const McSampleOutcome sample = run_mc_sample(
      body, n, toss_seed, adversary, plan.enabled() ? &plan : nullptr,
      storage);
  Observed obs;
  obs.status = sample.status;
  obs.proc_ops = sample.proc_ops;
  if (sample.has_winner) obs.min_winner_ops = sample.winner_ops;
  obs.trace = sample.decision_trace;
  return obs;
}

// The executor has no spec checker; apply the winner scan the
// Monte-Carlo classification (core/lower_bound.cc) uses so the
// taxonomies are comparable. Like the simulator's classifier, the scan
// only applies to fully-terminated runs — a crashed/hung sample
// reports no winner there either.
Observed observe_from_run(const HwRunResult& run, int n) {
  Observed obs;
  obs.status = run.status;
  obs.proc_ops = run.shared_ops;
  obs.trace = run.decision_trace;
  if (run.status == RunStatus::kClean) {
    for (ProcId p = 0; p < n; ++p) {
      if (run.proc_status[p] == HwProcOutcome::kDone &&
          run.results[p].holds_u64() && run.results[p].as_u64() == 1) {
        obs.min_winner_ops = std::min(obs.min_winner_ops, run.shared_ops[p]);
      }
    }
    if (obs.min_winner_ops == ~std::uint64_t{0}) {
      obs.status = RunStatus::kSpecViolation;
    }
  }
  return obs;
}

Observed observe_hw(const ProcBody& body, int n, std::uint64_t toss_seed,
                    const FaultPlan& plan, StoragePolicy storage) {
  HwRunOptions options;
  options.seed = toss_seed;
  options.storage = storage;
  options.fault = plan.enabled() ? &plan : nullptr;
  HwExecutor exec(options);
  return observe_from_run(exec.run(n, body), n);
}

// The oversubscribed leg: the same n processes as coroutines on a
// two-thread pool (n = 2..7, so every triple is genuinely multiplexed).
// Fault decisions pure in (proc, op-index) — and trace replays keyed the
// same way — must be invisible to HOW the processes are scheduled, so
// the observable contract must match the 1:1 substrates bit-for-bit.
Observed observe_oversub(const ProcBody& body, int n,
                         std::uint64_t toss_seed, const FaultPlan& plan,
                         StoragePolicy storage) {
  OversubRunOptions options;
  options.seed = toss_seed;
  options.storage = storage;
  options.fault = plan.enabled() ? &plan : nullptr;
  options.num_threads = 2;
  OversubscribedExecutor exec(options);
  return observe_from_run(exec.run(n, body), n);
}

std::string describe(int t, const std::string& scenario, int n,
                     std::uint64_t toss_seed, const FaultPlan& plan) {
  return "triple " + std::to_string(t) + ": scenario=" + scenario +
         " n=" + std::to_string(n) +
         " toss_seed=" + std::to_string(toss_seed) + " plan=" +
         plan.to_json();
}

void expect_equal(const Observed& sim, const Observed& hw,
                  const std::string& what) {
  EXPECT_EQ(sim.status, hw.status) << what;
  EXPECT_EQ(sim.proc_ops, hw.proc_ops) << what;
  EXPECT_EQ(sim.min_winner_ops, hw.min_winner_ops) << what;
}

TEST_P(HwFaultDiffTest, RandomTriplesAgreeAcrossSubstrates) {
  const StoragePolicy storage = GetParam();
  Rng rng(0xD1FF);
  int adaptive_with_decisions = 0;
  for (int t = 0; t < kTriples; ++t) {
    const int n = 2 + static_cast<int>(rng.next_below(6));  // 2..7
    static const char* const kScenarios[] = {
        "fixed_ll_sc", "uc_single_register", "tas_fixed",
        "fixed_swap",  "uc_combining",       "leader_fixed"};
    const std::string scenario = kScenarios[t % 6];
    const bool tas_like = scenario == "tas_fixed" || scenario == "leader_fixed";
    const ProcBody body = fault_scenario(scenario);
    const std::uint64_t toss_seed = rng.next_u64();

    FaultPlan plan;
    plan.seed = rng.next_u64();
    const int strategy = t % 3;
    if (strategy == 0) {
      plan.sc_fail_rate = 0.1 + 0.8 * rng.next_double();
      // Every other oblivious triple also exercises the budget cap.
      if (t % 6 == 0) plan.fault_budget = 1 + rng.next_below(8);
    } else if (strategy == 1) {
      plan.strategy = FaultStrategyKind::kAdaptive;
      plan.fault_budget = 1 + rng.next_below(8);
    } else {
      plan.strategy = FaultStrategyKind::kBurst;
      plan.burst_len = 1 + static_cast<std::uint32_t>(rng.next_below(3));
      plan.burst_period =
          plan.burst_len + 1 + static_cast<std::uint32_t>(rng.next_below(5));
    }
    // Every fifth triple crash-stops one process partway through its
    // fixed op stream; half of those let it rejoin. Recovery decisions
    // are pure in (plan.seed, proc, incarnation) and the fixed bodies
    // are schedule-independent, so a recovered run's observables — an
    // amnesiac restart replays the whole body on top of the after_ops
    // already charged; a resumed frame just finishes it — must agree
    // across all three substrates like any other plan. The draws are
    // independent of the t % 4 scenario cycle and the t % 3 strategy
    // cycle, so recovery crosses every (scenario, strategy) pair.
    if (t % 5 == 0) {
      CrashSpec crash;
      crash.proc = static_cast<ProcId>(rng.next_below(n));
      crash.after_ops = 1 + rng.next_below(12);
      if (rng.next_below(2) == 0) {
        crash.recovery.max_restarts = 1;
        crash.recovery.delay_units = 1 + rng.next_below(3);
        crash.recovery.amnesia = rng.next_below(4) != 0;
        // The fixed-shape TAS/leader scenarios report "won" as "my claim
        // SC succeeded from nil", and WHICH process that is follows the
        // natural SC race — schedule-dependent, so an amnesiac replay of
        // a crashed WINNER would report zero winners on one substrate and
        // one on the other. Their diff-sweep crash legs resume the frame
        // instead; amnesiac restarts of the strict protocol (whose claim
        // re-entry recognizes its own writer) live in recovery_test.cc.
        if (tas_like) crash.recovery.amnesia = false;
      }
      plan.crashes.push_back(crash);
    }
    const std::string what = describe(t, scenario, n, toss_seed, plan);

    // Schedule-dependent placements: adaptive (decisions follow the
    // observed history) and budget-CAPPED oblivious (the roll is pure in
    // (p, k), but which candidates reach the budget first is not — the
    // arrival order differs between the adversary schedule and free-
    // running threads). Both go through the record/replay contract, as
    // does every combining triple (the ISSUE-level contract: combining
    // replays bit-for-bit from recorded DecisionTraces).
    // The TAS/leader scenarios also always record/replay: their op
    // SHAPES are schedule-independent, but pinning every injected
    // failure to a recorded (proc, op-index) trace is the contract the
    // replay tooling ships, and it must hold for the new objects too.
    const bool schedule_dependent = strategy == 1 ||
                                    (strategy == 0 && plan.fault_budget > 0) ||
                                    scenario == "uc_combining" || tas_like;
    if (schedule_dependent) {
      // Record on the deterministic simulator, replay the trace on hw.
      const Observed recorded = observe_sim(body, n, toss_seed, plan, storage);
      FaultPlan replay_plan = plan;
      replay_plan.trace = recorded.trace;
      const Observed sim = observe_sim(body, n, toss_seed, replay_plan,
                                       storage);
      expect_equal(recorded, sim, what + " [sim replay]");
      EXPECT_EQ(sim.trace, recorded.trace) << what;
      const Observed hw = observe_hw(body, n, toss_seed, replay_plan, storage);
      expect_equal(recorded, hw, what + " [hw replay]");
      const Observed over =
          observe_oversub(body, n, toss_seed, replay_plan, storage);
      expect_equal(recorded, over, what + " [oversub replay]");
      if (strategy == 1 && !recorded.trace.empty()) ++adaptive_with_decisions;
    } else {
      const Observed sim = observe_sim(body, n, toss_seed, plan, storage);
      const Observed hw = observe_hw(body, n, toss_seed, plan, storage);
      expect_equal(sim, hw, what);
      EXPECT_EQ(sim.trace, hw.trace) << what;
      const Observed over = observe_oversub(body, n, toss_seed, plan, storage);
      expect_equal(sim, over, what + " [oversub]");
      EXPECT_EQ(sim.trace, over.trace) << what << " [oversub]";
    }
    if (HasFatalFailure()) return;
  }
  // The sweep exercised the adaptive path for real: fixed_ll_sc and the
  // two universal-construction scenarios have contended SCs for the
  // adversary to fail (fixed_swap ones are intentionally vacuous — swaps
  // never reach the SC decision point).
  EXPECT_GT(adaptive_with_decisions, 10);
}

}  // namespace
}  // namespace llsc
