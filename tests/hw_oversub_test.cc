// OversubscribedExecutor: M logical coroutine processes on an N-thread
// pool. Covers the determinism contract (toss streams are migration-
// safe, so an oversubscribed run reproduces the 1:1 executor's results
// bit-for-bit), operation exactness under every yield policy, the
// watchdog's ⌈M/N⌉-scaled stagnation window (the false-hung regression),
// and a TSan-facing stress leg with adaptive fault injection.
#include "hw/oversub_executor.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/fault.h"
#include "hw/fault_scenarios.h"
#include "memory/rmw.h"
#include "util/rng.h"

namespace llsc {
namespace {

OversubRunOptions pool(int num_threads, std::uint64_t seed,
                       YieldPolicy policy = YieldPolicy::kEveryOp) {
  OversubRunOptions options;
  options.num_threads = num_threads;
  options.seed = seed;
  options.yield_policy = policy;
  return options;
}

// Each process folds five bounded tosses into a value — a pure function
// of the toss assignment, so it must agree between the 1:1 executor and
// every oversubscribed pool shape, whatever carrier threads the
// coroutine migrates across.
SimTask toss_sum_body(ProcCtx ctx) {
  std::uint64_t sum = 0;
  for (int k = 0; k < 5; ++k) {
    const std::uint64_t t = co_await ctx.toss(100);
    sum = sum * 101 + t;
  }
  co_return Value::of_u64(sum);
}

// `ops` fetch&add(1)s on register 0; returns the sum of the observed old
// values. Across all processes the old values are exactly {0, ..., T-1}
// (T = m * ops), so the grand total T(T-1)/2 detects any lost or
// duplicated operation.
SimTask counter_body(ProcCtx ctx, std::shared_ptr<const RmwFunction> inc,
                     int ops) {
  std::uint64_t sum = 0;
  for (int k = 0; k < ops; ++k) {
    const Value old = co_await ctx.rmw(0, inc);
    sum += old.is_nil() ? 0 : old.as_u64();
  }
  co_return Value::of_u64(sum);
}

std::shared_ptr<const RmwFunction> fetch_add1() {
  return make_rmw("fetch&add1", [](const Value& v) {
    return Value::of_u64(v.is_nil() ? 1 : v.as_u64() + 1);
  });
}

// Six LL/SC increments with a win counter — contention-free when run
// solo, so every SC succeeds.
SimTask llsc_wins_body(ProcCtx ctx) {
  std::uint64_t wins = 0;
  for (int k = 0; k < 6; ++k) {
    const Value cur = co_await ctx.ll(0);
    const std::uint64_t base = cur.is_nil() ? 0 : cur.as_u64();
    const ScResult sc = co_await ctx.sc(0, Value::of_u64(base + 1));
    if (sc.ok) ++wins;
  }
  co_return Value::of_u64(wins);
}

std::uint64_t result_sum(const HwRunResult& run) {
  std::uint64_t sum = 0;
  for (const Value& v : run.results) {
    if (v.holds_u64()) sum += v.as_u64();
  }
  return sum;
}

TEST(HwOversubTest, CounterIsExactUnderEveryYieldPolicy) {
  const int m = 16;
  const int ops = 8;
  const std::uint64_t total = static_cast<std::uint64_t>(m) * ops;
  auto inc = fetch_add1();
  const ProcBody body = [&](ProcCtx ctx, ProcId, int) {
    return counter_body(ctx, inc, ops);
  };
  for (const YieldPolicy policy :
       {YieldPolicy::kEveryOp, YieldPolicy::kEveryK,
        YieldPolicy::kOnScFailure}) {
    OversubscribedExecutor exec(pool(2, 7, policy));
    const HwRunResult run = exec.run(m, body);
    ASSERT_TRUE(run.ok) << to_string(policy);
    EXPECT_EQ(result_sum(run), total * (total - 1) / 2)
        << to_string(policy);
    EXPECT_EQ(run.sched.num_threads, 2) << to_string(policy);
    EXPECT_EQ(run.sched.num_procs, m) << to_string(policy);
    // Every process was started (and possibly resumed) by the pool.
    EXPECT_GE(run.sched.resumes, static_cast<std::uint64_t>(m))
        << to_string(policy);
  }
}

TEST(HwOversubTest, EveryOpPolicyYieldsOncePerSharedOp) {
  // One process, one carrier: with kEveryOp each of the `ops` RMWs
  // suspends the coroutine exactly once, so the scheduler counters are
  // fully deterministic.
  const int ops = 8;
  auto inc = fetch_add1();
  const ProcBody body = [&](ProcCtx ctx, ProcId, int) {
    return counter_body(ctx, inc, ops);
  };
  OversubscribedExecutor exec(pool(1, 1, YieldPolicy::kEveryOp));
  const HwRunResult run = exec.run(1, body);
  ASSERT_TRUE(run.ok);
  EXPECT_EQ(run.sched.yields, static_cast<std::uint64_t>(ops));
  EXPECT_EQ(run.sched.resumes, static_cast<std::uint64_t>(ops) + 1);
  EXPECT_EQ(run.sched.steals, 0u);
}

TEST(HwOversubTest, OnScFailurePolicyNeverYieldsWithoutContention) {
  // A single process never loses an SC, so the polite-loser policy keeps
  // its carrier thread for the whole body: zero yields, one resume.
  const ProcBody body = [](ProcCtx ctx, ProcId, int) {
    return llsc_wins_body(ctx);
  };
  OversubscribedExecutor exec(pool(1, 1, YieldPolicy::kOnScFailure));
  const HwRunResult run = exec.run(1, body);
  ASSERT_TRUE(run.ok);
  ASSERT_TRUE(run.results[0].holds_u64());
  EXPECT_EQ(run.results[0].as_u64(), 6u);
  EXPECT_EQ(run.sched.yields, 0u);
  EXPECT_EQ(run.sched.resumes, 1u);
}

TEST(HwOversubTest, TossStreamsAreMigrationSafe) {
  // Toss outcomes are pure in (seed, p, j) and each Process carries its
  // own toss counter, so the per-process results must be identical on the
  // 1:1 executor and on every pool shape — and across repeated
  // oversubscribed runs, whatever interleaving the OS picks.
  const int m = 16;
  const ProcBody body = [](ProcCtx ctx, ProcId, int) {
    return toss_sum_body(ctx);
  };
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    HwRunOptions one_to_one;
    one_to_one.seed = seed;
    HwExecutor baseline(one_to_one);
    const HwRunResult ref = baseline.run(m, body);
    ASSERT_TRUE(ref.ok);
    for (const int num_threads : {1, 2, 4}) {
      OversubscribedExecutor exec(pool(num_threads, seed));
      const HwRunResult run = exec.run(m, body);
      ASSERT_TRUE(run.ok) << "seed=" << seed << " N=" << num_threads;
      EXPECT_EQ(run.results, ref.results)
          << "seed=" << seed << " N=" << num_threads;
      EXPECT_EQ(run.num_tosses, ref.num_tosses)
          << "seed=" << seed << " N=" << num_threads;
      EXPECT_EQ(run.shared_ops, ref.shared_ops)
          << "seed=" << seed << " N=" << num_threads;
    }
    // Replay determinism: the same pool shape again, bit-for-bit.
    OversubscribedExecutor again(pool(2, seed));
    const HwRunResult replay = again.run(m, body);
    EXPECT_EQ(replay.results, ref.results) << "seed=" << seed;
  }
}

TEST(HwOversubTest, WatchdogScalesStagnationWindowWithOversubFactor) {
  // The false-hung regression: M = 32 logical processes share N = 2
  // carriers, and every op stalls 8 ms, so the pool's global progress
  // counter can sit still for ~one whole stall — longer than the raw
  // 5 ms stagnation window. The watchdog must scale the window by
  // ⌈M/N⌉ = 16 (run_support.h) or this perfectly healthy run is
  // cancelled as hung.
  const int m = 32;
  const int ops = 3;
  auto inc = fetch_add1();
  const ProcBody body = [&](ProcCtx ctx, ProcId, int) {
    return counter_body(ctx, inc, ops);
  };
  FaultPlan plan;
  plan.seed = 11;
  plan.stall_rate = 1.0;
  plan.max_stall_units = 1;
  plan.stall_unit_ns = 8'000'000;  // 8 ms per op
  OversubRunOptions options = pool(2, 11);
  options.fault = &plan;
  options.progress_timeout_ms = scale_timeout_ms(5);
  options.timeout_ms = scale_timeout_ms(30'000);  // backstop only
  OversubscribedExecutor exec(options);
  const HwRunResult run = exec.run(m, body);
  EXPECT_FALSE(run.cancelled);
  ASSERT_TRUE(run.ok);
  const std::uint64_t total = static_cast<std::uint64_t>(m) * ops;
  EXPECT_EQ(result_sum(run), total * (total - 1) / 2);
}

TEST(HwOversubTest, AdaptiveFaultStressIsExactUnderOversubscription) {
  // The TSan-facing stress leg: M = 64 processes on 4 carriers running
  // the contended fixed LL/SC scenario while an adaptive adversary
  // spends a fault budget on the observed history. The fixed op stream
  // means forced SC failures never add retries, so the run must stay
  // clean and fully accounted whatever the interleaving.
  const int m = 64;
  const ProcBody body = fault_scenario("fixed_ll_sc");
  FaultPlan plan;
  plan.seed = 23;
  plan.strategy = FaultStrategyKind::kAdaptive;
  plan.fault_budget = 16;
  OversubRunOptions options = pool(4, 23);
  options.fault = &plan;
  OversubscribedExecutor exec(options);
  const HwRunResult run = exec.run(m, body);
  ASSERT_TRUE(run.ok);
  ASSERT_EQ(static_cast<int>(run.proc_status.size()), m);
  for (ProcId p = 0; p < m; ++p) {
    EXPECT_EQ(run.proc_status[static_cast<std::size_t>(p)],
              HwProcOutcome::kDone);
    EXPECT_GT(run.shared_ops[static_cast<std::size_t>(p)], 0u);
  }
  EXPECT_LE(run.fault.injected_sc_failures, plan.fault_budget);
  EXPECT_GE(run.sched.resumes, static_cast<std::uint64_t>(m));
}

}  // namespace
}  // namespace llsc
