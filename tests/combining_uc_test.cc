// CombiningUniversal (universal/combining.h) simulator tests: exactness
// of fetch&increment under many schedulers, queue obliviousness, batch
// accounting, the fault-free shared-op bound, register-group labeling,
// the fixed-shape mode's schedule-independent op count, and the registry.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "memory/shared_memory.h"
#include "objects/arith.h"
#include "objects/containers.h"
#include "sched/scheduler.h"
#include "universal/combining.h"
#include "universal/single_register.h"

namespace llsc {
namespace {

SimTask fai_worker(ProcCtx ctx, UniversalConstruction* uc, int ops) {
  std::uint64_t sum = 0;
  for (int k = 0; k < ops; ++k) {
    // Hoisted: braced temporaries may not appear in co_await expressions
    // (GCC 12 workaround; see runtime/sub_task.h).
    ObjOp op{"fetch&increment", {}};
    const Value r = co_await uc->execute(ctx, std::move(op));
    sum += r.as_u64();
  }
  co_return Value::of_u64(sum);
}

std::unique_ptr<Scheduler> make_sched(int kind, int n, int ops) {
  switch (kind) {
    case 0:
      return std::make_unique<RoundRobinScheduler>();
    case 1:
      return std::make_unique<SequentialScheduler>();
    default:
      return std::make_unique<RandomScheduler>(
          static_cast<std::uint64_t>(n * 1000 + ops));
  }
}

class CombiningSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CombiningSweep, FetchIncrementCountsEveryOperationExactlyOnce) {
  const int n = std::get<0>(GetParam());
  const int ops = std::get<1>(GetParam());
  const int sched_kind = std::get<2>(GetParam());

  CombiningUniversal uc(n, [] {
    return std::make_unique<FetchAddObject>(64, 0);
  });
  System sys(n, [&uc, ops](ProcCtx ctx, ProcId, int) {
    return fai_worker(ctx, &uc, ops);
  });
  const RunOutcome out = make_sched(sched_kind, n, ops)->run(sys, 1 << 24);
  ASSERT_TRUE(out.all_terminated);

  // A correct fetch&increment hands out each value 0..n*ops-1 exactly
  // once; responses sum to the triangular number regardless of batching.
  std::uint64_t total = 0;
  for (ProcId p = 0; p < n; ++p) total += sys.process(p).result().as_u64();
  const std::uint64_t count = static_cast<std::uint64_t>(n) * ops;
  EXPECT_EQ(total, count * (count - 1) / 2);

  // Batch accounting: every op was applied by exactly one install, so
  // the per-install batches partition the n*ops operations.
  const CombiningStats stats = uc.stats();
  EXPECT_EQ(stats.ops_applied, count);
  EXPECT_GE(stats.installs, 1u);
  EXPECT_LE(stats.installs, count);
  EXPECT_GE(stats.mean_batch_size(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CombiningSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 17),
                       ::testing::Values(1, 3),
                       ::testing::Values(0, 1, 2)));

TEST(Combining, CrossesToggleWordBoundary) {
  // n > kToggleBitsPerWord forces a second toggle word; the exactness
  // argument must survive multi-word snapshots.
  const int n = kToggleBitsPerWord + 3;
  CombiningUniversal uc(n, [] {
    return std::make_unique<FetchAddObject>(64, 0);
  });
  ASSERT_EQ(uc.toggle_words(), 2);
  System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
    return fai_worker(ctx, &uc, 2);
  });
  RandomScheduler sched(4242);
  ASSERT_TRUE(sched.run(sys, 1 << 24).all_terminated);
  std::uint64_t total = 0;
  for (ProcId p = 0; p < n; ++p) total += sys.process(p).result().as_u64();
  const std::uint64_t count = static_cast<std::uint64_t>(n) * 2;
  EXPECT_EQ(total, count * (count - 1) / 2);
}

SimTask queue_worker(ProcCtx ctx, UniversalConstruction* uc) {
  ObjOp enq{"enqueue", Value::of_u64(static_cast<std::uint64_t>(ctx.id()))};
  co_await uc->execute(ctx, std::move(enq));
  ObjOp deq{"dequeue", {}};
  const Value r = co_await uc->execute(ctx, std::move(deq));
  co_return r;
}

TEST(Combining, ImplementsQueueObliviously) {
  const int n = 5;
  CombiningUniversal uc(n, [] { return std::make_unique<QueueObject>(); });
  System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
    return queue_worker(ctx, &uc);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1 << 24).all_terminated);
  std::set<std::uint64_t> seen;
  for (ProcId p = 0; p < n; ++p) {
    const Value& r = sys.process(p).result();
    ASSERT_TRUE(r.holds_u64());
    EXPECT_TRUE(seen.insert(r.as_u64()).second);
    EXPECT_LT(r.as_u64(), static_cast<std::uint64_t>(n));
  }
}

TEST(Combining, MeasuredOpsRespectFaultFreeBoundOneOutstandingOp) {
  // The documented worst_case_shared_ops() bound holds per operation in
  // the one-outstanding-op-per-process regime under any fault-free
  // schedule (here: the adversarially interleaving RandomScheduler).
  const int n = 8;
  CombiningUniversal uc(n, [] {
    return std::make_unique<FetchAddObject>(64, 0);
  });
  System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
    return fai_worker(ctx, &uc, 1);
  });
  RandomScheduler sched(777);
  ASSERT_TRUE(sched.run(sys, 1 << 24).all_terminated);
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_LE(sys.process(p).shared_ops(), uc.worst_case_shared_ops())
        << "p" << p;
  }
}

TEST(Combining, FixedShapeModeHasScheduleIndependentOpCount) {
  // With max_attempts + scan_all, every execute() costs exactly
  // 1 (announce) + 2 (toggle try) + k·(1 + W + n + 1) + 1 (final read)
  // shared ops, independent of schedule — the fixed_* contract the
  // differential sweep's proc_ops comparison relies on.
  const int n = 4;
  const CombiningOptions fixed{.max_attempts = 2, .scan_all = true};
  const std::uint64_t expect_ops =
      1 + 2 + 2 * (1 + 1 + static_cast<std::uint64_t>(n) + 1) + 1;
  for (const int seed : {1, 2, 3}) {
    CombiningUniversal uc(
        n, [] { return std::make_unique<FetchAddObject>(64, 0); },
        /*base=*/0, fixed);
    System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
      return fai_worker(ctx, &uc, 1);
    });
    RandomScheduler sched(static_cast<std::uint64_t>(seed));
    ASSERT_TRUE(sched.run(sys, 1 << 24).all_terminated);
    for (ProcId p = 0; p < n; ++p) {
      EXPECT_EQ(sys.process(p).shared_ops(), expect_ops)
          << "seed " << seed << " p" << p;
    }
    // The one-outstanding-op regime still applies every op within the
    // two attempts, so responses stay exact even in fixed mode.
    std::uint64_t total = 0;
    for (ProcId p = 0; p < n; ++p) total += sys.process(p).result().as_u64();
    EXPECT_EQ(total, 4u * 3u / 2u);
  }
}

TEST(Combining, RegisterGroupsPartitionTheSpan) {
  const int n = 50;  // two toggle words
  CombiningUniversal uc(n, [] {
    return std::make_unique<FetchAddObject>(64, 0);
  }, /*base=*/7);
  const std::vector<RegisterGroup> groups = uc.register_groups();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].label, "state");
  EXPECT_EQ(groups[1].label, "toggle");
  EXPECT_EQ(groups[2].label, "announce");
  // Contiguous, in order, covering exactly [base, base + span).
  EXPECT_EQ(groups[0].lo, 7u);
  for (std::size_t i = 1; i < groups.size(); ++i) {
    EXPECT_EQ(groups[i].lo, groups[i - 1].hi);
  }
  EXPECT_EQ(groups.back().hi, 7u + uc.register_span());
  EXPECT_EQ(groups[1].hi - groups[1].lo,
            static_cast<RegId>(uc.toggle_words()));
  EXPECT_EQ(groups[2].hi - groups[2].lo, static_cast<RegId>(n));
}

TEST(Combining, InlinePolicyDemotesOnlyStateAndAnnounceRegisters) {
  // The deliberate demote-on-overflow story: structured state/announce
  // payloads demote their registers; toggle words (≤ 46 bits) never do.
  // The per-group breakdown attributes each demotion to its logical
  // object.
  const int n = 6;
  CombiningUniversal uc(n, [] {
    return std::make_unique<FetchAddObject>(64, 0);
  });
  System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
    return fai_worker(ctx, &uc, 2);
  });
  sys.memory().set_storage_policy(StoragePolicy::kInline);
  sys.memory().set_register_groups(uc.register_groups());
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1 << 24).all_terminated);

  const RegisterWidthStats stats = sys.memory().width_stats();
  EXPECT_EQ(stats.boxed_fallback_registers,
            static_cast<std::uint64_t>(n) + 1);  // n announces + 1 state
  ASSERT_TRUE(stats.boxed_fallback_by_group.contains("state"));
  ASSERT_TRUE(stats.boxed_fallback_by_group.contains("toggle"));
  ASSERT_TRUE(stats.boxed_fallback_by_group.contains("announce"));
  EXPECT_EQ(stats.boxed_fallback_by_group.at("state"), 1u);
  EXPECT_EQ(stats.boxed_fallback_by_group.at("toggle"), 0u);
  EXPECT_EQ(stats.boxed_fallback_by_group.at("announce"),
            static_cast<std::uint64_t>(n));
}

TEST(UniversalRegistry, BuildsAllFourByName) {
  const auto& names = universal_construction_names();
  ASSERT_EQ(names.size(), 4u);
  for (const std::string& name : names) {
    auto uc = make_universal(name, 4, [] {
      return std::make_unique<FetchAddObject>(64, 0);
    });
    ASSERT_NE(uc, nullptr) << name;
    EXPECT_EQ(uc->name(), name);
    System sys(4, [&uc](ProcCtx ctx, ProcId, int) {
      return fai_worker(ctx, uc.get(), 2);
    });
    RandomScheduler sched(9);
    ASSERT_TRUE(sched.run(sys, 1 << 24).all_terminated) << name;
    std::uint64_t total = 0;
    for (ProcId p = 0; p < 4; ++p) total += sys.process(p).result().as_u64();
    EXPECT_EQ(total, 8u * 7u / 2u) << name;
  }
}

}  // namespace
}  // namespace llsc
