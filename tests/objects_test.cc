// Tests for the sequential object specifications (src/objects).
#include <gtest/gtest.h>

#include "objects/arith.h"
#include "objects/basic.h"
#include "objects/bitwise.h"
#include "objects/containers.h"

namespace llsc {
namespace {

TEST(FetchAdd, IncrementReturnsOldAndWraps) {
  FetchAddObject o(3, 6);  // 3-bit counter starting at 6
  EXPECT_EQ(o.apply({"fetch&increment", {}}).as_u64(), 6u);
  EXPECT_EQ(o.apply({"fetch&increment", {}}).as_u64(), 7u);
  EXPECT_EQ(o.apply({"fetch&increment", {}}).as_u64(), 0u);  // wrapped
  EXPECT_EQ(o.state(), 1u);
}

TEST(FetchAdd, AddArbitraryAmounts) {
  FetchAddObject o(8);
  EXPECT_EQ(o.apply({"fetch&add", Value::of_u64(200)}).as_u64(), 0u);
  EXPECT_EQ(o.apply({"fetch&add", Value::of_u64(100)}).as_u64(), 200u);
  EXPECT_EQ(o.state(), 44u);  // (200 + 100) mod 256
}

TEST(FetchAdd, ReadLeavesStateAlone) {
  FetchAddObject o(8, 5);
  EXPECT_EQ(o.apply({"read", {}}).as_u64(), 5u);
  EXPECT_EQ(o.state(), 5u);
}

TEST(FetchAdd, CloneIsIndependent) {
  FetchAddObject o(8, 1);
  auto copy = o.clone();
  o.apply({"fetch&increment", {}});
  EXPECT_EQ(o.state_fingerprint(), "f&a:2");
  EXPECT_EQ(copy->state_fingerprint(), "f&a:1");
}

TEST(FetchMultiply, MultipliesModulo2K) {
  FetchMultiplyObject o(4, BigInt(3));  // 4-bit
  EXPECT_EQ(o.apply({"fetch&multiply", Value::of_big(BigInt(5))}).as_big(),
            BigInt(3));
  EXPECT_EQ(o.state(), BigInt(15));
  EXPECT_EQ(o.apply({"fetch&multiply", Value::of_big(BigInt(2))}).as_big(),
            BigInt(15));
  EXPECT_EQ(o.state(), BigInt(14));  // 30 mod 16
}

TEST(FetchMultiply, PowersOfTwoOverflowToZero) {
  const int n = 10;
  FetchMultiplyObject o(static_cast<std::size_t>(n), BigInt(1));
  for (int i = 0; i < n; ++i) {
    const Value r = o.apply({"fetch&multiply", Value::of_big(BigInt(2))});
    EXPECT_EQ(r.as_big(), BigInt::pow2(static_cast<std::size_t>(i)));
  }
  EXPECT_TRUE(o.state().is_zero());  // 2^n mod 2^n
}

TEST(Bitwise, FetchAndClearsBits) {
  BitwiseObject o(8, BigInt(0xFF));
  BigInt mask(0xFF);
  mask.set_bit(3, false);
  EXPECT_EQ(o.apply({"fetch&and", Value::of_big(mask)}).as_big(),
            BigInt(0xFF));
  EXPECT_EQ(o.state(), BigInt(0xF7));
}

TEST(Bitwise, FetchOrSetsBitsAndTruncates) {
  BitwiseObject o(4, BigInt(0));
  EXPECT_EQ(o.apply({"fetch&or", Value::of_big(BigInt(0x3))}).as_big(),
            BigInt(0));
  EXPECT_EQ(o.apply({"fetch&or", Value::of_big(BigInt(0xFF))}).as_big(),
            BigInt(3));
  EXPECT_EQ(o.state(), BigInt(0xF));  // truncated to 4 bits
}

TEST(FetchComplement, FlipsOneBit) {
  FetchComplementObject o(100, BigInt(0));
  EXPECT_EQ(o.apply({"fetch&complement", Value::of_u64(77)}).as_big(),
            BigInt(0));
  EXPECT_EQ(o.state(), BigInt::pow2(77));
  EXPECT_EQ(o.apply({"fetch&complement", Value::of_u64(77)}).as_big(),
            BigInt::pow2(77));
  EXPECT_TRUE(o.state().is_zero());
}

TEST(Queue, FifoOrderWithInitialContents) {
  QueueObject q({Value::of_u64(1), Value::of_u64(2)});
  q.apply({"enqueue", Value::of_u64(3)});
  EXPECT_EQ(q.apply({"dequeue", {}}).as_u64(), 1u);
  EXPECT_EQ(q.apply({"dequeue", {}}).as_u64(), 2u);
  EXPECT_EQ(q.apply({"dequeue", {}}).as_u64(), 3u);
  EXPECT_TRUE(q.apply({"dequeue", {}}).is_nil());  // empty
}

TEST(Queue, EnqueueReturnsAck) {
  QueueObject q;
  EXPECT_TRUE(q.apply({"enqueue", Value::of_u64(9)}).is_nil());
  EXPECT_EQ(q.size(), 1u);
}

TEST(Stack, LifoOrder) {
  StackObject s;
  s.apply({"push", Value::of_u64(1)});
  s.apply({"push", Value::of_u64(2)});
  EXPECT_EQ(s.apply({"pop", {}}).as_u64(), 2u);
  EXPECT_EQ(s.apply({"pop", {}}).as_u64(), 1u);
  EXPECT_TRUE(s.apply({"pop", {}}).is_nil());
}

TEST(Stack, InitialContentsBottomFirst) {
  StackObject s({Value::of_u64(3), Value::of_u64(2), Value::of_u64(1)});
  EXPECT_EQ(s.apply({"pop", {}}).as_u64(), 1u);  // top was pushed last
  EXPECT_EQ(s.apply({"pop", {}}).as_u64(), 2u);
  EXPECT_EQ(s.apply({"pop", {}}).as_u64(), 3u);
}

TEST(Bitwise, FetchXorTogglesBits) {
  BitwiseObject o(8, BigInt(0));
  EXPECT_EQ(o.apply({"fetch&xor", Value::of_big(BigInt(0b1010))}).as_big(),
            BigInt(0));
  EXPECT_EQ(o.apply({"fetch&xor", Value::of_big(BigInt(0b0110))}).as_big(),
            BigInt(0b1010));
  EXPECT_EQ(o.state(), BigInt(0b1100));
}

TEST(PriorityQueue, DeleteMinOrder) {
  PriorityQueueObject pq({5, 1, 3});
  pq.apply({"insert", Value::of_u64(2)});
  EXPECT_EQ(pq.apply({"delete-min", {}}).as_u64(), 1u);
  EXPECT_EQ(pq.apply({"delete-min", {}}).as_u64(), 2u);
  EXPECT_EQ(pq.apply({"delete-min", {}}).as_u64(), 3u);
  EXPECT_EQ(pq.apply({"delete-min", {}}).as_u64(), 5u);
  EXPECT_TRUE(pq.apply({"delete-min", {}}).is_nil());
}

TEST(PriorityQueue, DuplicateKeysSupported) {
  PriorityQueueObject pq;
  pq.apply({"insert", Value::of_u64(7)});
  pq.apply({"insert", Value::of_u64(7)});
  EXPECT_EQ(pq.size(), 2u);
  EXPECT_EQ(pq.apply({"delete-min", {}}).as_u64(), 7u);
  EXPECT_EQ(pq.apply({"delete-min", {}}).as_u64(), 7u);
}

TEST(Register, ReadWrite) {
  RegisterObject r(Value::of_u64(1));
  EXPECT_EQ(r.apply({"read", {}}).as_u64(), 1u);
  EXPECT_TRUE(r.apply({"write", Value::of_u64(9)}).is_nil());
  EXPECT_EQ(r.apply({"read", {}}).as_u64(), 9u);
}

TEST(Counter, IncrementAcksAndReadSees) {
  CounterObject c(8);
  EXPECT_TRUE(c.apply({"increment", {}}).is_nil());
  EXPECT_TRUE(c.apply({"increment", {}}).is_nil());
  EXPECT_EQ(c.apply({"read", {}}).as_u64(), 2u);
}

TEST(Cas, SwapsOnlyOnMatch) {
  CasObject c(Value::of_u64(1));
  const Value miss = c.apply(
      {"cas", Value::of(CasArgs{Value::of_u64(2), Value::of_u64(9)})});
  EXPECT_EQ(miss.as_u64(), 1u);
  EXPECT_EQ(c.apply({"read", {}}).as_u64(), 1u);  // unchanged
  const Value hit = c.apply(
      {"cas", Value::of(CasArgs{Value::of_u64(1), Value::of_u64(9)})});
  EXPECT_EQ(hit.as_u64(), 1u);
  EXPECT_EQ(c.apply({"read", {}}).as_u64(), 9u);
}

TEST(Consensus, FirstProposalWins) {
  ConsensusObject c;
  EXPECT_EQ(c.apply({"propose", Value::of_u64(5)}).as_u64(), 5u);
  EXPECT_EQ(c.apply({"propose", Value::of_u64(7)}).as_u64(), 5u);
}

TEST(Objects, FingerprintsDistinguishStates) {
  QueueObject a({Value::of_u64(1)});
  QueueObject b({Value::of_u64(2)});
  EXPECT_NE(a.state_fingerprint(), b.state_fingerprint());
  b.apply({"dequeue", {}});
  b.apply({"enqueue", Value::of_u64(1)});
  EXPECT_EQ(a.state_fingerprint(), b.state_fingerprint());
}

TEST(ObjectsDeath, UnknownOperationRejected) {
  QueueObject q;
  EXPECT_DEATH(q.apply({"pop", {}}), "unknown operation");
  FetchAddObject f(8);
  EXPECT_DEATH(f.apply({"dequeue", {}}), "unknown operation");
}

}  // namespace
}  // namespace llsc
