// Tests for memory/shared_memory.h: the exact Section 3 semantics of
// LL, SC, validate, swap and move, including every Pset interaction.
#include "memory/shared_memory.h"

#include <gtest/gtest.h>

namespace llsc {
namespace {

TEST(SharedMemory, FreshRegisterIsNilWithEmptyPset) {
  SharedMemory mem;
  const OpResult r = mem.validate(0, 5);
  EXPECT_FALSE(r.flag);
  EXPECT_TRUE(r.value.is_nil());
  EXPECT_EQ(mem.peek_pset_size(5), 0u);
}

TEST(SharedMemory, LlReturnsValueAndLinks) {
  SharedMemory mem;
  mem.swap(0, 3, Value::of_u64(10));
  const Value v = mem.ll(1, 3);
  EXPECT_EQ(v.as_u64(), 10u);
  EXPECT_TRUE(mem.peek_pset_contains(3, 1));
  EXPECT_FALSE(mem.peek_pset_contains(3, 0));
}

TEST(SharedMemory, ScSucceedsAfterLl) {
  SharedMemory mem;
  mem.ll(0, 7);
  const OpResult r = mem.sc(0, 7, Value::of_u64(1));
  EXPECT_TRUE(r.flag);
  EXPECT_TRUE(r.value.is_nil());  // previous value
  EXPECT_EQ(mem.peek_value(7).as_u64(), 1u);
  EXPECT_EQ(mem.peek_pset_size(7), 0u);  // success clears the Pset
}

TEST(SharedMemory, ScWithoutLlFails) {
  SharedMemory mem;
  const OpResult r = mem.sc(0, 7, Value::of_u64(1));
  EXPECT_FALSE(r.flag);
  EXPECT_TRUE(mem.peek_value(7).is_nil());  // no effect
}

TEST(SharedMemory, InterferingScInvalidatesLink) {
  SharedMemory mem;
  mem.ll(0, 2);
  mem.ll(1, 2);
  EXPECT_TRUE(mem.sc(1, 2, Value::of_u64(11)).flag);
  // p0's link died with p1's successful SC.
  const OpResult r = mem.sc(0, 2, Value::of_u64(22));
  EXPECT_FALSE(r.flag);
  // Failed SC returns the *current* value (strengthened response).
  EXPECT_EQ(r.value.as_u64(), 11u);
  EXPECT_EQ(mem.peek_value(2).as_u64(), 11u);
}

TEST(SharedMemory, ValidateReportsLinkAndValue) {
  SharedMemory mem;
  mem.ll(0, 4);
  OpResult r = mem.validate(0, 4);
  EXPECT_TRUE(r.flag);
  // validate does not link: p1 validating does not join the Pset.
  r = mem.validate(1, 4);
  EXPECT_FALSE(r.flag);
  EXPECT_FALSE(mem.peek_pset_contains(4, 1));
  // ... and does not disturb p0's link.
  EXPECT_TRUE(mem.sc(0, 4, Value::of_u64(1)).flag);
}

TEST(SharedMemory, SwapReturnsPreviousAndClearsPset) {
  SharedMemory mem;
  mem.ll(0, 9);
  const Value prev = mem.swap(1, 9, Value::of_u64(5));
  EXPECT_TRUE(prev.is_nil());
  EXPECT_EQ(mem.peek_value(9).as_u64(), 5u);
  // p0's link died with the swap.
  EXPECT_FALSE(mem.sc(0, 9, Value::of_u64(6)).flag);
  const Value prev2 = mem.swap(2, 9, Value::of_u64(7));
  EXPECT_EQ(prev2.as_u64(), 5u);
}

TEST(SharedMemory, MoveCopiesValueAndClearsDstPset) {
  SharedMemory mem;
  mem.swap(0, 1, Value::of_u64(111));
  mem.ll(2, 5);  // p2 links the destination
  mem.move(3, 1, 5);
  EXPECT_EQ(mem.peek_value(5).as_u64(), 111u);
  EXPECT_EQ(mem.peek_value(1).as_u64(), 111u);  // source unchanged
  EXPECT_FALSE(mem.sc(2, 5, Value::of_u64(0)).flag);  // dst Pset cleared
}

TEST(SharedMemory, MovePreservesSourcePset) {
  SharedMemory mem;
  mem.swap(0, 1, Value::of_u64(111));
  mem.ll(2, 1);  // p2 links the SOURCE
  mem.move(3, 1, 5);
  EXPECT_TRUE(mem.sc(2, 1, Value::of_u64(0)).flag);  // src Pset untouched
}

TEST(SharedMemory, MoveFromUntouchedRegisterMovesNil) {
  SharedMemory mem;
  mem.swap(0, 5, Value::of_u64(9));
  mem.move(0, 100, 5);
  EXPECT_TRUE(mem.peek_value(5).is_nil());
}

TEST(SharedMemory, MultipleLinksAllSurviveUntilStore) {
  SharedMemory mem;
  mem.ll(0, 6);
  mem.ll(1, 6);
  mem.ll(2, 6);
  EXPECT_EQ(mem.peek_pset_size(6), 3u);
  EXPECT_TRUE(mem.sc(2, 6, Value::of_u64(1)).flag);
  EXPECT_FALSE(mem.sc(0, 6, Value::of_u64(2)).flag);
  EXPECT_FALSE(mem.sc(1, 6, Value::of_u64(3)).flag);
}

TEST(SharedMemory, RelinkAfterFailureAllowsSuccess) {
  SharedMemory mem;
  mem.ll(0, 6);
  mem.swap(1, 6, Value::of_u64(1));
  EXPECT_FALSE(mem.sc(0, 6, Value::of_u64(2)).flag);
  mem.ll(0, 6);
  EXPECT_TRUE(mem.sc(0, 6, Value::of_u64(2)).flag);
  EXPECT_EQ(mem.peek_value(6).as_u64(), 2u);
}

TEST(SharedMemory, ApplyDispatchesEveryKind) {
  SharedMemory mem;
  OpResult r = mem.apply(0, PendingOp{.kind = OpKind::kLL, .reg = 1,
                                      .src = 0, .arg = {}, .rmw = {}});
  EXPECT_TRUE(r.value.is_nil());
  r = mem.apply(0, PendingOp{.kind = OpKind::kSC, .reg = 1, .src = 0,
                             .arg = Value::of_u64(3), .rmw = {}});
  EXPECT_TRUE(r.flag);
  r = mem.apply(1, PendingOp{.kind = OpKind::kValidate, .reg = 1, .src = 0,
                             .arg = {}, .rmw = {}});
  EXPECT_FALSE(r.flag);
  EXPECT_EQ(r.value.as_u64(), 3u);
  r = mem.apply(1, PendingOp{.kind = OpKind::kSwap, .reg = 1, .src = 0,
                             .arg = Value::of_u64(4), .rmw = {}});
  EXPECT_EQ(r.value.as_u64(), 3u);
  r = mem.apply(1, PendingOp{.kind = OpKind::kMove, .reg = 2, .src = 1,
                             .arg = {}, .rmw = {}});
  EXPECT_TRUE(r.value.is_nil());
  EXPECT_EQ(mem.peek_value(2).as_u64(), 4u);
}

TEST(SharedMemory, CountsPerKind) {
  SharedMemory mem;
  mem.ll(0, 1);
  mem.ll(0, 2);
  mem.sc(0, 1, Value::of_u64(1));
  mem.validate(0, 1);
  mem.swap(0, 3, Value::of_u64(2));
  mem.move(0, 3, 4);
  EXPECT_EQ(mem.counts()[OpKind::kLL], 2u);
  EXPECT_EQ(mem.counts()[OpKind::kSC], 1u);
  EXPECT_EQ(mem.counts()[OpKind::kValidate], 1u);
  EXPECT_EQ(mem.counts()[OpKind::kSwap], 1u);
  EXPECT_EQ(mem.counts()[OpKind::kMove], 1u);
  EXPECT_EQ(mem.counts().total(), 6u);
}

TEST(SharedMemory, TouchedRegistersSorted) {
  SharedMemory mem;
  mem.swap(0, 9, Value::of_u64(1));
  mem.swap(0, 3, Value::of_u64(1));
  mem.ll(0, 7);
  const auto touched = mem.touched_registers();
  EXPECT_EQ(touched, (std::vector<RegId>{3, 7, 9}));
}

TEST(SharedMemory, StateHashSensitiveToValueAndPset) {
  SharedMemory a, b;
  a.swap(0, 1, Value::of_u64(1));
  b.swap(0, 1, Value::of_u64(1));
  EXPECT_EQ(a.state_hash(), b.state_hash());
  b.ll(3, 1);
  EXPECT_NE(a.state_hash(), b.state_hash());
  a.ll(3, 1);
  EXPECT_EQ(a.state_hash(), b.state_hash());
  a.swap(0, 1, Value::of_u64(2));
  EXPECT_NE(a.state_hash(), b.state_hash());
}

TEST(SharedMemory, SelfMoveClearsPsetKeepsValue) {
  // The raw memory supports self-moves (the model-level exclusion lives in
  // ProcCtx); semantics: value unchanged, Pset cleared.
  SharedMemory mem;
  mem.swap(0, 1, Value::of_u64(5));
  mem.ll(2, 1);
  mem.move(0, 1, 1);
  EXPECT_EQ(mem.peek_value(1).as_u64(), 5u);
  EXPECT_FALSE(mem.peek_pset_contains(1, 2));
}

}  // namespace
}  // namespace llsc
