// Tests for the Herlihy-style consensus-based universal construction:
// correctness under schedulers and the adversary, linearizability,
// long-lived multi-op use, and the O(n) worst-case bound.
#include "universal/consensus_based.h"

#include <gtest/gtest.h>

#include <set>

#include "core/adversary.h"
#include "lin/checker.h"
#include "lin/history.h"
#include "objects/arith.h"
#include "objects/containers.h"
#include "sched/scheduler.h"
#include "wakeup/reductions.h"
#include "wakeup/spec.h"

namespace llsc {
namespace {

ObjectFactory counter_factory() {
  return [] { return std::make_unique<FetchAddObject>(64, 0); };
}

SimTask fai_worker(ProcCtx ctx, UniversalConstruction* uc, int ops) {
  std::uint64_t sum = 0;
  for (int k = 0; k < ops; ++k) {
    ObjOp op{"fetch&increment", {}};
    const Value r = co_await uc->execute(ctx, std::move(op));
    sum += r.as_u64();
  }
  co_return Value::of_u64(sum);
}

class ConsensusUcSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConsensusUcSweep, FetchIncrementExactlyOnce) {
  const int n = std::get<0>(GetParam());
  const int ops = std::get<1>(GetParam());
  const int sched_kind = std::get<2>(GetParam());

  ConsensusBasedUC uc(n, counter_factory());
  System sys(n, [&uc, ops](ProcCtx ctx, ProcId, int) {
    return fai_worker(ctx, &uc, ops);
  });
  std::unique_ptr<Scheduler> sched;
  switch (sched_kind) {
    case 0:
      sched = std::make_unique<RoundRobinScheduler>();
      break;
    case 1:
      sched = std::make_unique<SequentialScheduler>();
      break;
    default:
      sched = std::make_unique<RandomScheduler>(
          static_cast<std::uint64_t>(n * 31 + ops));
      break;
  }
  ASSERT_TRUE(sched->run(sys, 1 << 24).all_terminated);
  std::uint64_t total = 0;
  for (ProcId p = 0; p < n; ++p) total += sys.process(p).result().as_u64();
  const std::uint64_t count = static_cast<std::uint64_t>(n) * ops;
  EXPECT_EQ(total, count * (count - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConsensusUcSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8), ::testing::Values(1, 3),
                       ::testing::Values(0, 1, 2)));

TEST(ConsensusUc, WaitFreeUnderAdversaryWithinBound) {
  const int n = 12;
  ConsensusBasedUC uc(n, counter_factory());
  System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
    return fai_worker(ctx, &uc, 1);
  });
  const RunLog log = run_adversary(sys);
  ASSERT_TRUE(log.all_terminated);
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_LE(sys.process(p).shared_ops(), uc.worst_case_shared_ops())
        << "p" << p;
  }
  // The related-work claim [25]: consensus-based oblivious constructions
  // pay Ω(n); the adversary indeed forces a linear-in-n cost on someone.
  EXPECT_GE(sys.max_shared_ops(), static_cast<std::uint64_t>(n));
}

SimTask queue_worker(ProcCtx ctx, HistoryRecorder* rec, ProcId me) {
  ObjOp enq{"enqueue", Value::of_u64(static_cast<std::uint64_t>(me))};
  (void)co_await rec->execute(ctx, std::move(enq));
  ObjOp deq{"dequeue", {}};
  const Value r = co_await rec->execute(ctx, std::move(deq));
  co_return r;
}

TEST(ConsensusUc, LinearizableQueueHistories) {
  for (const std::uint64_t seed : {3u, 17u, 99u}) {
    const int n = 4;
    ConsensusBasedUC uc(n, [] { return std::make_unique<QueueObject>(); });
    HistoryRecorder recorder(uc);
    System sys(n, [&recorder](ProcCtx ctx, ProcId i, int) {
      return queue_worker(ctx, &recorder, i);
    });
    RandomScheduler sched(seed);
    ASSERT_TRUE(sched.run(sys, 1 << 22).all_terminated);
    const LinResult lin = check_linearizability(
        recorder.history(), [] { return std::make_unique<QueueObject>(); });
    EXPECT_TRUE(lin.linearizable) << recorder.history().to_string();
  }
}

TEST(ConsensusUc, SolvesWakeupReductions) {
  for (const char* name : {"fetch&increment", "queue"}) {
    const int n = 6;
    ConsensusBasedUC uc(n, reduction_object_factory(name, n));
    System sys(n, reduction_wakeup_body(name, uc));
    const RunLog log = run_adversary(sys);
    ASSERT_TRUE(log.all_terminated) << name;
    const WakeupCheckResult check = check_wakeup_run(sys);
    EXPECT_TRUE(check.ok) << name << ": " << check.violations.front();
  }
}

TEST(ConsensusUc, SoloOperationIsCheap) {
  // Without contention an op costs a handful of steps (announce, one
  // consensus cell, response replayed locally).
  ConsensusBasedUC uc(1, counter_factory());
  System sys(1, [&uc](ProcCtx ctx, ProcId, int) {
    return fai_worker(ctx, &uc, 1);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1000).all_terminated);
  EXPECT_LE(sys.process(0).shared_ops(), 5u);
}

}  // namespace
}  // namespace llsc
