// Tests for the run renderer (core/trace.h) and the remaining core data
// types: ProcSet, op formatting, snapshot determinism.
#include "core/trace.h"

#include <gtest/gtest.h>

#include "core/adversary.h"
#include "core/proc_set.h"
#include "core/s_run.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

TEST(ProcSet, BasicOperations) {
  ProcSet s(100);
  EXPECT_TRUE(s.empty());
  s.insert(0);
  s.insert(63);
  s.insert(64);
  s.insert(99);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_FALSE(s.contains(65));
  EXPECT_FALSE(s.contains(-1));
  EXPECT_FALSE(s.contains(100));
  EXPECT_EQ(s.members(), (std::vector<ProcId>{0, 63, 64, 99}));
}

TEST(ProcSet, SubsetAndUnion) {
  const ProcSet a = ProcSet::of(10, {1, 3, 5});
  const ProcSet b = ProcSet::of(10, {1, 3, 5, 7});
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(a.subset_of(a));
  ProcSet u = a;
  u.unite(ProcSet::of(10, {2, 7}));
  EXPECT_EQ(u.members(), (std::vector<ProcId>{1, 2, 3, 5, 7}));
  EXPECT_TRUE(ProcSet(10).subset_of(a));  // empty set
}

TEST(ProcSet, FullAndSingleton) {
  const ProcSet full = ProcSet::full(70);
  EXPECT_EQ(full.count(), 70u);
  EXPECT_TRUE(full.contains(69));
  const ProcSet one = ProcSet::singleton(70, 42);
  EXPECT_EQ(one.count(), 1u);
  EXPECT_TRUE(one.subset_of(full));
  EXPECT_EQ(one.to_string(), "{p42}");
}

TEST(ProcSetDeath, UniverseMismatchRejected) {
  ProcSet a(4), b(5);
  EXPECT_DEATH(a.unite(b), "universes differ");
  EXPECT_DEATH(a.insert(4), "outside");
}

TEST(OpFormatting, PendingOpsAndResults) {
  EXPECT_EQ((PendingOp{.kind = OpKind::kLL, .reg = 3, .src = 0, .arg = {},
                       .rmw = {}})
                .to_string(),
            "LL(R3)");
  EXPECT_EQ((PendingOp{.kind = OpKind::kSC, .reg = 1, .src = 0,
                       .arg = Value::of_u64(9), .rmw = {}})
                .to_string(),
            "SC(R1, 9)");
  EXPECT_EQ((PendingOp{.kind = OpKind::kMove, .reg = 2, .src = 7, .arg = {},
                       .rmw = {}})
                .to_string(),
            "MOVE(R7 -> R2)");
  EXPECT_EQ((OpResult{.flag = false, .value = Value::of_u64(4)}).to_string(),
            "(false, 4)");
  EXPECT_STREQ(op_kind_name(OpKind::kValidate), "VL");
  EXPECT_STREQ(op_kind_name(OpKind::kRmw), "RMW");
  EXPECT_STREQ(op_group_name(OpGroup::kLoad), "load");
}

TEST(Trace, RenderRunShowsRoundsAndOps) {
  System sys(3, tournament_wakeup());
  const RunLog log = run_adversary(sys);
  const std::string text = render_run(log);
  EXPECT_NE(text.find("n=3"), std::string::npos);
  EXPECT_NE(text.find("terminated"), std::string::npos);
  EXPECT_NE(text.find("round 1"), std::string::npos);
  EXPECT_NE(text.find("SWAP"), std::string::npos);
  EXPECT_NE(text.find("LL"), std::string::npos);
}

TEST(Trace, MaxRoundsTruncates) {
  System sys(3, tournament_wakeup());
  const RunLog log = run_adversary(sys);
  ASSERT_GT(log.num_rounds(), 2);
  TraceOptions opts;
  opts.max_rounds = 2;
  const std::string text = render_run(log, opts);
  EXPECT_NE(text.find("more rounds"), std::string::npos);
  EXPECT_EQ(text.find("round 3"), std::string::npos);
}

TEST(Trace, UpGrowthTable) {
  System sys(4, tournament_wakeup());
  const RunLog log = run_adversary(sys);
  const UpTracker tracker = UpTracker::over(log);
  const std::string text = render_up_growth(tracker);
  EXPECT_NE(text.find("round | max|UP(X,r)| | bound 4^r"),
            std::string::npos);
  EXPECT_NE(text.find("0 | 1 | 1"), std::string::npos);
}

TEST(Trace, RunComparisonShowsBothColumns) {
  const int n = 4;
  System all_sys(n, tournament_wakeup());
  const RunLog all_log = run_adversary(all_sys);
  const UpTracker up = UpTracker::over(all_log);
  const ProcSet s = ProcSet::of(n, {0, 2});
  System s_sys(n, tournament_wakeup());
  const RunLog s_log = run_s_run(s_sys, all_log, up, s);
  const std::string text = render_run_comparison(all_log, s_log);
  EXPECT_NE(text.find("(All,A)-run"), std::string::npos);
  EXPECT_NE(text.find("1 | {p0,p1,p2,p3} | "), std::string::npos);
}

TEST(Trace, ShowRegistersRendersValues) {
  System sys(2, counter_wakeup());
  const RunLog log = run_adversary(sys);
  TraceOptions opts;
  opts.show_registers = true;
  const std::string text = render_run(log, opts);
  EXPECT_NE(text.find("R0 = "), std::string::npos);
}

}  // namespace
}  // namespace llsc
