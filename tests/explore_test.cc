// Model-checking tests: bounded-preemption exploration of tiny
// configurations. Wakeup algorithms must satisfy the spec and the
// universal constructions must stay linearizable under EVERY explored
// schedule, not just the ones other tests happen to pick.
#include "explore/explore.h"

#include <gtest/gtest.h>

#include "lin/checker.h"
#include "lin/history.h"
#include "objects/arith.h"
#include "direct/rmw_universal.h"
#include "universal/consensus_based.h"
#include "universal/group_update.h"
#include "universal/single_register.h"
#include "wakeup/algorithms.h"
#include "wakeup/spec.h"

namespace llsc {
namespace {

std::string wakeup_checker(System& sys) {
  if (!sys.all_done()) return "";  // step-budget handling is the driver's
  const WakeupCheckResult res = check_wakeup_run(sys);
  return res.ok ? "" : res.violations.front();
}

TEST(Explore, TournamentWakeupSurvivesExploration) {
  const RunFactory factory = [] {
    auto sys = std::make_unique<System>(3, tournament_wakeup());
    return std::make_unique<SimpleRunInstance>(std::move(sys),
                                               wakeup_checker);
  };
  ExploreOptions opts;
  opts.max_preemptions = 2;
  opts.max_runs = 30000;
  const ExploreStats stats = explore_bounded_preemption(factory, opts);
  EXPECT_EQ(stats.violations, 0u)
      << stats.summary() << "\n"
      << (stats.examples.empty() ? "" : stats.examples.front());
  EXPECT_GT(stats.runs, 100u);
}

TEST(Explore, SwapMixWakeupSurvivesExploration) {
  const RunFactory factory = [] {
    auto sys = std::make_unique<System>(2, swap_mix_wakeup());
    return std::make_unique<SimpleRunInstance>(std::move(sys),
                                               wakeup_checker);
  };
  ExploreOptions opts;
  opts.max_preemptions = 2;
  opts.max_runs = 20000;
  const ExploreStats stats = explore_bounded_preemption(factory, opts);
  EXPECT_EQ(stats.violations, 0u)
      << (stats.examples.empty() ? "" : stats.examples.front());
}

TEST(Explore, CheatingWakeupCaughtByExploration) {
  // cheating_wakeup(1) returns 1 after one op; some schedule lets a
  // process return 1 before everyone stepped — exploration must find it.
  const RunFactory factory = [] {
    auto sys = std::make_unique<System>(2, cheating_wakeup(1));
    return std::make_unique<SimpleRunInstance>(std::move(sys),
                                               wakeup_checker);
  };
  ExploreOptions opts;
  opts.max_preemptions = 1;
  const ExploreStats stats = explore_bounded_preemption(factory, opts);
  EXPECT_GT(stats.violations, 0u) << stats.summary();
}

// Universal-construction exploration: record history, check
// linearizability at the end of every schedule.
enum class UcKind { kGroupUpdate, kSingleRegister, kConsensusBased, kRmw };

class UcRunInstance final : public RunInstance {
 public:
  UcRunInstance(int n, UcKind kind) {
    const ObjectFactory factory = [] {
      return std::make_unique<FetchAddObject>(64, 0);
    };
    switch (kind) {
      case UcKind::kGroupUpdate:
        uc_ = std::make_unique<GroupUpdateUC>(n, factory);
        break;
      case UcKind::kSingleRegister:
        uc_ = std::make_unique<SingleRegisterUC>(n, factory);
        break;
      case UcKind::kConsensusBased:
        uc_ = std::make_unique<ConsensusBasedUC>(n, factory);
        break;
      case UcKind::kRmw:
        uc_ = std::make_unique<RmwUniversalUC>(n, factory);
        break;
    }
    recorder_ = std::make_unique<HistoryRecorder>(*uc_);
    sys_ = std::make_unique<System>(
        n, [this](ProcCtx ctx, ProcId, int) { return worker(ctx); });
  }

  System& system() override { return *sys_; }

  std::string check() override {
    if (!sys_->all_done()) return "";
    const LinResult r = check_linearizability(
        recorder_->history(),
        [] { return std::make_unique<FetchAddObject>(64, 0); });
    return r.linearizable ? ""
                          : "non-linearizable history:\n" +
                                recorder_->history().to_string();
  }

 private:
  SimTask worker(ProcCtx ctx) {
    ObjOp op{"fetch&increment", {}};  // hoisted (GCC 12 workaround)
    (void)co_await recorder_->execute(ctx, std::move(op));
    co_return Value::of_u64(0);
  }

  std::unique_ptr<UniversalConstruction> uc_;
  std::unique_ptr<HistoryRecorder> recorder_;
  std::unique_ptr<System> sys_;
};

class ExploreUcSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExploreUcSweep, ConstructionLinearizableUnderExploration) {
  const UcKind kind = static_cast<UcKind>(GetParam());
  const RunFactory factory = [kind] {
    return std::make_unique<UcRunInstance>(2, kind);
  };
  ExploreOptions opts;
  opts.max_preemptions = 2;
  opts.max_runs = 15000;
  const ExploreStats stats = explore_bounded_preemption(factory, opts);
  EXPECT_EQ(stats.violations, 0u)
      << (stats.examples.empty() ? stats.summary()
                                 : stats.examples.front());
  // Short protocols (RMW: one op per process) have few preemption points.
  EXPECT_GT(stats.runs, 2u);
}

INSTANTIATE_TEST_SUITE_P(AllConstructions, ExploreUcSweep,
                         ::testing::Values(0, 1, 2, 3));

TEST(Explore, ConsensusUcThreeProcessesOnePreemption) {
  // The helping path of the consensus-based construction involves three
  // processes disagreeing about cell proposals; cover n = 3 with a smaller
  // preemption budget to keep the run count tractable.
  const RunFactory factory = [] {
    return std::make_unique<UcRunInstance>(3, UcKind::kConsensusBased);
  };
  ExploreOptions opts;
  opts.max_preemptions = 1;
  opts.max_runs = 20000;
  const ExploreStats stats = explore_bounded_preemption(factory, opts);
  EXPECT_EQ(stats.violations, 0u)
      << (stats.examples.empty() ? stats.summary()
                                 : stats.examples.front());
}

TEST(Explore, RunCapReported) {
  const RunFactory factory = [] {
    auto sys = std::make_unique<System>(3, tournament_wakeup());
    return std::make_unique<SimpleRunInstance>(
        std::move(sys), [](System&) { return std::string(); });
  };
  ExploreOptions opts;
  opts.max_preemptions = 3;
  opts.max_runs = 50;  // tiny cap
  const ExploreStats stats = explore_bounded_preemption(factory, opts);
  EXPECT_FALSE(stats.exhausted);
  EXPECT_EQ(stats.runs, 50u);
}

}  // namespace
}  // namespace llsc
