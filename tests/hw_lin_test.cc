// Linearizability smoke test on the hw backend: a genuinely concurrent
// queue history produced by GroupUpdateUC on HwExecutor, recorded with the
// thread-safe recorder and fed through the src/lin checker.
#include <gtest/gtest.h>

#include <memory>

#include "hw/hw_executor.h"
#include "hw/hw_history.h"
#include "lin/checker.h"
#include "objects/containers.h"
#include "universal/group_update.h"

namespace llsc {
namespace {

// Each process enqueues two tagged values and then dequeues twice. The
// free coroutine shape is required by the GCC 12 notes in runtime/sim_task.h.
SimTask queue_workload(ProcCtx ctx, ConcurrentHistoryRecorder* rec) {
  // ObjOps are hoisted out of the co_await full-expressions — see the
  // GCC 12 braced-init note in runtime/sim_task.h.
  const std::uint64_t base = static_cast<std::uint64_t>(ctx.id()) * 100;
  ObjOp enq1{"enqueue", Value::of_u64(base + 1)};
  ObjOp enq2{"enqueue", Value::of_u64(base + 2)};
  ObjOp deq1{"dequeue", {}};
  ObjOp deq2{"dequeue", {}};
  Value v = co_await rec->execute(ctx, std::move(enq1));
  v = co_await rec->execute(ctx, std::move(enq2));
  v = co_await rec->execute(ctx, std::move(deq1));
  v = co_await rec->execute(ctx, std::move(deq2));
  co_return v;
}

History record_hw_queue_history(int n, std::uint64_t seed) {
  GroupUpdateUC uc(n, [] { return std::make_unique<QueueObject>(); });
  ConcurrentHistoryRecorder rec(uc, n);
  HwRunOptions opts;
  opts.seed = seed;
  HwExecutor exec(opts);
  const HwRunResult run = exec.run(n, [&rec](ProcCtx ctx, ProcId, int) {
    return queue_workload(ctx, &rec);
  });
  EXPECT_TRUE(run.ok);
  return rec.take();
}

TEST(HwLinTest, ConcurrentQueueHistoryIsLinearizable) {
  const ObjectFactory factory = [] { return std::make_unique<QueueObject>(); };
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const History hist = record_hw_queue_history(/*n=*/3, seed);
    ASSERT_EQ(hist.ops.size(), 12u);
    const LinResult lin = check_linearizability(hist, factory);
    EXPECT_TRUE(lin.search_exhausted);
    EXPECT_TRUE(lin.linearizable) << hist.to_string();
  }
}

TEST(HwLinTest, CheckerRejectsCorruptedHwHistory) {
  const ObjectFactory factory = [] { return std::make_unique<QueueObject>(); };
  History hist = record_hw_queue_history(/*n=*/3, /*seed=*/1);
  // Forge a response no linearization of a FIFO queue can produce.
  for (HistOp& op : hist.ops) {
    if (op.op.name == "dequeue") {
      op.response = Value::of_u64(424242);
      break;
    }
  }
  const LinResult lin = check_linearizability(hist, factory);
  EXPECT_FALSE(lin.linearizable);
}

TEST(HwLinTest, RecorderStampsRespectRealTime) {
  const History hist = record_hw_queue_history(/*n=*/3, /*seed=*/2);
  for (const HistOp& op : hist.ops) {
    EXPECT_LT(op.inv_time, op.resp_time);
  }
  // Program order per process survives the merge.
  for (ProcId p = 0; p < 3; ++p) {
    const auto idx = hist.by_process(p);
    ASSERT_EQ(idx.size(), 4u);
    for (std::size_t k = 1; k < idx.size(); ++k) {
      EXPECT_LT(hist.ops[idx[k - 1]].resp_time, hist.ops[idx[k]].inv_time);
    }
  }
}

}  // namespace
}  // namespace llsc
