// Linearizability smoke test on the hw backend: a genuinely concurrent
// queue history produced by GroupUpdateUC on HwExecutor, recorded with the
// thread-safe recorder and fed through the src/lin checker — plus
// linearizability UNDER SPURIOUS SC FAILURES. The wait-free universal
// constructions assume the helping lemma and abort when an injected
// failure voids it, so those fault legs use DirectFetchAdd's lock-free
// LL/SC retry loop: a spurious SC failure there is indistinguishable from
// losing the race, costing only a retry. CombiningUniversal is lock-free
// the same way — a lost SC only delays a batch — so it gets its own fault
// legs: histories through the announce/toggle/combine protocol must stay
// linearizable under oblivious and adaptive injection, and the sequence
// numbers in the announce slots must prevent double-application (each
// announced op's return value observed exactly once). The checker then
// proves the safety half of the fault model: injected failures are false
// NEGATIVES only — they may delay an operation, never corrupt one.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "direct/direct.h"
#include "hw/fault.h"
#include "hw/hw_executor.h"
#include "hw/hw_history.h"
#include "lin/checker.h"
#include "memory/storage_policy.h"
#include "objects/arith.h"
#include "objects/containers.h"
#include "objects/leader.h"
#include "objects/tas.h"
#include "universal/combining.h"
#include "universal/group_update.h"
#include "util/check.h"

namespace llsc {
namespace {

// Each process enqueues two tagged values and then dequeues twice. The
// free coroutine shape is required by the GCC 12 notes in runtime/sim_task.h.
SimTask queue_workload(ProcCtx ctx, ConcurrentHistoryRecorder* rec) {
  // ObjOps are hoisted out of the co_await full-expressions — see the
  // GCC 12 braced-init note in runtime/sim_task.h.
  const std::uint64_t base = static_cast<std::uint64_t>(ctx.id()) * 100;
  ObjOp enq1{"enqueue", Value::of_u64(base + 1)};
  ObjOp enq2{"enqueue", Value::of_u64(base + 2)};
  ObjOp deq1{"dequeue", {}};
  ObjOp deq2{"dequeue", {}};
  Value v = co_await rec->execute(ctx, std::move(enq1));
  v = co_await rec->execute(ctx, std::move(enq2));
  v = co_await rec->execute(ctx, std::move(deq1));
  v = co_await rec->execute(ctx, std::move(deq2));
  co_return v;
}

History record_hw_queue_history(int n, std::uint64_t seed) {
  GroupUpdateUC uc(n, [] { return std::make_unique<QueueObject>(); });
  ConcurrentHistoryRecorder rec(uc, n);
  HwRunOptions opts;
  opts.seed = seed;
  HwExecutor exec(opts);
  const HwRunResult run = exec.run(n, [&rec](ProcCtx ctx, ProcId, int) {
    return queue_workload(ctx, &rec);
  });
  EXPECT_TRUE(run.ok);
  return rec.take();
}

TEST(HwLinTest, ConcurrentQueueHistoryIsLinearizable) {
  const ObjectFactory factory = [] { return std::make_unique<QueueObject>(); };
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const History hist = record_hw_queue_history(/*n=*/3, seed);
    ASSERT_EQ(hist.ops.size(), 12u);
    const LinResult lin = check_linearizability(hist, factory);
    EXPECT_TRUE(lin.search_exhausted);
    EXPECT_TRUE(lin.linearizable) << hist.to_string();
  }
}

TEST(HwLinTest, CheckerRejectsCorruptedHwHistory) {
  const ObjectFactory factory = [] { return std::make_unique<QueueObject>(); };
  History hist = record_hw_queue_history(/*n=*/3, /*seed=*/1);
  // Forge a response no linearization of a FIFO queue can produce.
  for (HistOp& op : hist.ops) {
    if (op.op.name == "dequeue") {
      op.response = Value::of_u64(424242);
      break;
    }
  }
  const LinResult lin = check_linearizability(hist, factory);
  EXPECT_FALSE(lin.linearizable);
}

// --- linearizability under injected SC failures --------------------------
//
// The fault legs run once per register-storage policy: a spurious SC loss
// is decided purely in (plan.seed, p, k) and substitutes a read-only
// probe, so injection must behave identically over boxed nodes and
// inline tagged words (memory/storage_policy.h).

class HwLinFaultTest : public ::testing::TestWithParam<StoragePolicy> {};

INSTANTIATE_TEST_SUITE_P(
    Storage, HwLinFaultTest,
    ::testing::Values(StoragePolicy::kBoxed, StoragePolicy::kInline),
    [](const ::testing::TestParamInfo<StoragePolicy>& info) {
      return info.param == StoragePolicy::kBoxed ? "Boxed" : "Inline";
    });

constexpr int kFaultProcs = 3;
constexpr int kFetchAddsPerProc = 4;

SimTask fetch_add_workload(ProcCtx ctx, ConcurrentHistoryRecorder* rec) {
  Value v;
  for (int k = 0; k < kFetchAddsPerProc; ++k) {
    ObjOp op{"fetch&increment", {}};
    v = co_await rec->execute(ctx, std::move(op));
  }
  co_return v;
}

// Records a concurrent fetch&add history over DirectFetchAdd's LL/SC
// retry loop while `plan` injects spurious SC failures.
History record_faulted_fetch_add_history(std::uint64_t seed,
                                         const FaultPlan& plan,
                                         FaultStats* stats,
                                         StoragePolicy storage) {
  DirectFetchAdd fa(/*reg=*/0, /*initial=*/0);
  ConcurrentHistoryRecorder rec(fa, kFaultProcs);
  HwRunOptions opts;
  opts.seed = seed;
  opts.storage = storage;
  opts.fault = plan.enabled() ? &plan : nullptr;
  HwExecutor exec(opts);
  const HwRunResult run =
      exec.run(kFaultProcs, [&rec](ProcCtx ctx, ProcId, int) {
        return fetch_add_workload(ctx, &rec);
      });
  EXPECT_TRUE(run.ok);
  if (stats != nullptr) *stats = run.fault;
  return rec.take();
}

void expect_faulted_history_linearizable(const FaultPlan& plan,
                                         StoragePolicy storage) {
  const ObjectFactory factory = [] {
    return std::make_unique<FetchAddObject>(64, 0);
  };
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    FaultStats stats;
    const History hist =
        record_faulted_fetch_add_history(seed, plan, &stats, storage);
    ASSERT_EQ(hist.ops.size(),
              static_cast<std::size_t>(kFaultProcs * kFetchAddsPerProc));
    // The injection actually happened — without it the test is vacuous.
    EXPECT_GT(stats.injected_sc_failures, 0u);
    const LinResult lin = check_linearizability(hist, factory);
    EXPECT_TRUE(lin.search_exhausted);
    EXPECT_TRUE(lin.linearizable) << hist.to_string();
  }
}

TEST_P(HwLinFaultTest, FetchAddHistoryUnderObliviousScFailuresIsLinearizable) {
  FaultPlan plan;
  plan.seed = 7;
  plan.sc_fail_rate = 0.4;
  expect_faulted_history_linearizable(plan, GetParam());
}

TEST_P(HwLinFaultTest, FetchAddHistoryUnderAdaptiveAdversaryIsLinearizable) {
  FaultPlan plan;
  plan.seed = 7;
  plan.strategy = FaultStrategyKind::kAdaptive;
  plan.fault_budget = 6;
  expect_faulted_history_linearizable(plan, GetParam());
}

// --- CombiningUniversal under injected SC failures -----------------------
//
// Lock-free like DirectFetchAdd, so the full strict protocol (announce,
// toggle flip retry, combine-until-applied) runs to completion under
// injection: a spurious SC loss delays a batch, never drops it.

History record_faulted_combining_history(std::uint64_t seed,
                                         const FaultPlan& plan,
                                         FaultStats* stats,
                                         StoragePolicy storage) {
  CombiningUniversal uc(kFaultProcs, [] {
    return std::make_unique<FetchAddObject>(64, 0);
  });
  ConcurrentHistoryRecorder rec(uc, kFaultProcs);
  HwRunOptions opts;
  opts.seed = seed;
  opts.storage = storage;
  opts.fault = plan.enabled() ? &plan : nullptr;
  opts.register_groups = uc.register_groups();
  HwExecutor exec(opts);
  const HwRunResult run =
      exec.run(kFaultProcs, [&rec](ProcCtx ctx, ProcId, int) {
        return fetch_add_workload(ctx, &rec);
      });
  EXPECT_TRUE(run.ok);
  if (stats != nullptr) *stats = run.fault;
  if (storage == StoragePolicy::kInline) {
    // The deliberate demote-on-overflow story, attributed per logical
    // object: the structured state + announce payloads demote their
    // registers, the ≤46-bit toggle words never do.
    EXPECT_EQ(run.width.boxed_fallback_by_group.at("state"), 1u);
    EXPECT_EQ(run.width.boxed_fallback_by_group.at("toggle"), 0u);
    EXPECT_EQ(run.width.boxed_fallback_by_group.at("announce"),
              static_cast<std::uint64_t>(kFaultProcs));
  }
  return rec.take();
}

void expect_faulted_combining_history_sound(const FaultPlan& plan,
                                            StoragePolicy storage) {
  const ObjectFactory factory = [] {
    return std::make_unique<FetchAddObject>(64, 0);
  };
  constexpr std::size_t kTotal =
      static_cast<std::size_t>(kFaultProcs * kFetchAddsPerProc);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    FaultStats stats;
    const History hist =
        record_faulted_combining_history(seed, plan, &stats, storage);
    ASSERT_EQ(hist.ops.size(), kTotal);
    // The injection actually happened — without it the test is vacuous.
    EXPECT_GT(stats.injected_sc_failures, 0u);
    const LinResult lin = check_linearizability(hist, factory);
    EXPECT_TRUE(lin.search_exhausted);
    EXPECT_TRUE(lin.linearizable) << hist.to_string();
    // No-double-apply: a fetch&increment counter hands out each value at
    // most once, so the announced ops' return values must be exactly
    // {0, ..., kTotal-1}, each observed exactly once. A dropped op would
    // shrink the set; a double-applied one would skip a value and (for
    // two announcements of the same op) duplicate a response.
    std::map<std::uint64_t, int> seen;
    for (const HistOp& op : hist.ops) {
      ASSERT_TRUE(op.response.holds_u64()) << hist.to_string();
      ++seen[op.response.as_u64()];
    }
    ASSERT_EQ(seen.size(), kTotal) << hist.to_string();
    for (const auto& [value, count] : seen) {
      EXPECT_LT(value, kTotal);
      EXPECT_EQ(count, 1) << "response " << value << " observed " << count
                          << " times";
    }
  }
}

TEST_P(HwLinFaultTest, CombiningHistoryUnderObliviousScFailuresIsSound) {
  FaultPlan plan;
  plan.seed = 7;
  plan.sc_fail_rate = 0.4;
  expect_faulted_combining_history_sound(plan, GetParam());
}

TEST_P(HwLinFaultTest, CombiningHistoryUnderAdaptiveAdversaryIsSound) {
  FaultPlan plan;
  plan.seed = 7;
  plan.strategy = FaultStrategyKind::kAdaptive;
  plan.fault_budget = 6;
  expect_faulted_combining_history_sound(plan, GetParam());
}

// --- randomized TAS under injected faults --------------------------------
//
// The strict TAS protocol (objects/tas.h) is a one-shot object, not a
// universal construction — but its concurrent histories are exactly what
// the lin checker consumes. This adapter presents one tas_subtask call as
// the "test&set" operation of TasObject's sequential spec (returns the
// OLD value: 0 to the winner, 1 to everyone else). Safety is deterministic
// — the claim register is write-once — so the histories must linearize
// under ANY injection pressure; the fault legs check precisely that, plus
// non-vacuity. (Defined here, not in src/objects: the objects library
// stays independent of src/universal.)
class TasProtocolAdapter final : public UniversalConstruction {
 public:
  TasProtocolAdapter(int n, TasOptions options) : n_(n), options_(options) {}

  SubTask<Value> execute(ProcCtx ctx, ObjOp op) override {
    LLSC_EXPECTS(op.name == "test&set",
                 "TAS adapter implements only test&set");
    const Value won = co_await tas_subtask(ctx, options_);
    // tas_subtask reports "did I win"; test&set returns the old value.
    co_return Value::of_u64(won.as_u64() == 1 ? 0 : 1);
  }

  std::uint64_t worst_case_shared_ops() const override {
    return tas_fault_free_max_ops(n_);  // fault-free bound (strict body
                                        // retries under injection)
  }

  std::string name() const override { return "tas-protocol"; }

 private:
  const int n_;
  const TasOptions options_;
};

SimTask tas_workload(ProcCtx ctx, ConcurrentHistoryRecorder* rec) {
  ObjOp op{"test&set", {}};
  const Value v = co_await rec->execute(ctx, std::move(op));
  co_return v;
}

History record_faulted_tas_history(std::uint64_t seed, const FaultPlan& plan,
                                   FaultStats* stats, StoragePolicy storage) {
  TasProtocolAdapter tas(kFaultProcs, TasOptions{});
  ConcurrentHistoryRecorder rec(tas, kFaultProcs);
  HwRunOptions opts;
  opts.seed = seed;
  opts.storage = storage;
  opts.fault = plan.enabled() ? &plan : nullptr;
  HwExecutor exec(opts);
  const HwRunResult run =
      exec.run(kFaultProcs, [&rec](ProcCtx ctx, ProcId, int) {
        return tas_workload(ctx, &rec);
      });
  EXPECT_TRUE(run.ok);
  if (stats != nullptr) *stats = run.fault;
  return rec.take();
}

void expect_faulted_tas_history_linearizable(const FaultPlan& plan,
                                             StoragePolicy storage) {
  const ObjectFactory factory = [] { return std::make_unique<TasObject>(); };
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    FaultStats stats;
    const History hist =
        record_faulted_tas_history(seed, plan, &stats, storage);
    ASSERT_EQ(hist.ops.size(), static_cast<std::size_t>(kFaultProcs));
    // The injection actually happened — without it the test is vacuous.
    EXPECT_GT(stats.injected_sc_failures, 0u);
    // Exactly one winner in the raw responses (old value 0), before even
    // asking the checker: the protocol's deterministic-safety claim.
    int winners = 0;
    for (const HistOp& op : hist.ops) {
      ASSERT_TRUE(op.response.holds_u64());
      if (op.response.as_u64() == 0) ++winners;
    }
    EXPECT_EQ(winners, 1) << hist.to_string();
    const LinResult lin = check_linearizability(hist, factory);
    EXPECT_TRUE(lin.search_exhausted);
    EXPECT_TRUE(lin.linearizable) << hist.to_string();
  }
}

TEST_P(HwLinFaultTest, TasHistoryUnderObliviousScFailuresIsLinearizable) {
  FaultPlan plan;
  plan.seed = 7;
  plan.sc_fail_rate = 0.4;
  expect_faulted_tas_history_linearizable(plan, GetParam());
}

TEST_P(HwLinFaultTest, TasHistoryUnderAdaptiveAdversaryIsLinearizable) {
  FaultPlan plan;
  plan.seed = 7;
  plan.strategy = FaultStrategyKind::kAdaptive;
  plan.fault_budget = 6;
  expect_faulted_tas_history_linearizable(plan, GetParam());
}

// Leader election rides the same claim register: under the same injection
// pressure every process must report the SAME elected id (agreement is
// the object's whole spec — no history search needed, the responses are
// the proof obligation).
TEST_P(HwLinFaultTest, LeaderElectionUnderFaultsAgreesOnOneLeader) {
  FaultPlan plan;
  plan.seed = 9;
  plan.sc_fail_rate = 0.4;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    HwRunOptions opts;
    opts.seed = seed;
    opts.storage = GetParam();
    opts.fault = &plan;
    HwExecutor exec(opts);
    const HwRunResult run = exec.run(kFaultProcs, leader_election_body());
    ASSERT_TRUE(run.ok);
    EXPECT_GT(run.fault.injected_sc_failures, 0u);
    ASSERT_TRUE(run.results[0].holds_u64());
    const std::uint64_t leader = run.results[0].as_u64();
    EXPECT_LT(leader, static_cast<std::uint64_t>(kFaultProcs));
    for (ProcId p = 1; p < kFaultProcs; ++p) {
      ASSERT_TRUE(run.results[p].holds_u64());
      EXPECT_EQ(run.results[p].as_u64(), leader) << "p" << p << " disagrees";
    }
  }
}

// The memory-level invariant behind those lin checks: a spurious failure
// is a false negative only. In one LL epoch two SCs can never BOTH
// succeed — the first success consumes the link, and an injected failure
// also erases it — under any injection pressure.
SimTask double_sc_workload(ProcCtx ctx, ProcId i, int) {
  constexpr int kEpochs = 8;
  std::uint64_t both_succeeded = 0;
  for (int k = 0; k < kEpochs; ++k) {
    (void)co_await ctx.ll(0);
    const ScResult first = co_await ctx.sc(
        0, Value::of_u64(static_cast<std::uint64_t>(i) * 100 + 1));
    const ScResult second = co_await ctx.sc(
        0, Value::of_u64(static_cast<std::uint64_t>(i) * 100 + 2));
    if (first.ok && second.ok) ++both_succeeded;
  }
  co_return Value::of_u64(both_succeeded);
}

TEST_P(HwLinFaultTest, SpuriousFailuresNeverYieldTwoSuccessfulScsPerEpoch) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.sc_fail_rate = 0.9;
    HwRunOptions opts;
    opts.seed = seed;
    opts.storage = GetParam();
    opts.fault = &plan;
    HwExecutor exec(opts);
    const HwRunResult run = exec.run(kFaultProcs, &double_sc_workload);
    ASSERT_TRUE(run.ok);
    EXPECT_GT(run.fault.injected_sc_failures, 0u);
    for (ProcId p = 0; p < kFaultProcs; ++p) {
      ASSERT_TRUE(run.results[p].holds_u64());
      EXPECT_EQ(run.results[p].as_u64(), 0u)
          << "proc " << p << " saw two successful SCs in one LL epoch";
    }
  }
}

TEST(HwLinTest, RecorderStampsRespectRealTime) {
  const History hist = record_hw_queue_history(/*n=*/3, /*seed=*/2);
  for (const HistOp& op : hist.ops) {
    EXPECT_LT(op.inv_time, op.resp_time);
  }
  // Program order per process survives the merge.
  for (ProcId p = 0; p < 3; ++p) {
    const auto idx = hist.by_process(p);
    ASSERT_EQ(idx.size(), 4u);
    for (std::size_t k = 1; k < idx.size(); ++k) {
      EXPECT_LT(hist.ops[idx[k - 1]].resp_time, hist.ops[idx[k]].inv_time);
    }
  }
}

}  // namespace
}  // namespace llsc
