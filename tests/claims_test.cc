// Property tests for the appendix claims that support Lemma 5.2, checked
// on arbitrary adversary runs, plus indistinguishability sweeps for a
// Pset-sensitive algorithm (validate flags observe who cleared links —
// the subtlest part of the register indistinguishability definition).
#include <gtest/gtest.h>

#include "core/adversary.h"
#include "core/indistinguishability.h"
#include "core/s_run.h"
#include "core/up_tracker.h"
#include "runtime/toss.h"
#include "util/rng.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

// An algorithm whose control flow branches on validate's link flag: p
// links R0, later validates it, and probes different registers depending
// on whether an interferer invalidated the link. Not a wakeup solution —
// the lemmas are quantified over ALL algorithms.
SimTask link_probe_body(ProcCtx ctx, ProcId i, int n) {
  (void)n;
  (void)co_await ctx.ll(0);
  if (i % 2 == 0) {
    (void)co_await ctx.sc(0, Value::of_u64(static_cast<std::uint64_t>(i)));
  } else {
    (void)co_await ctx.validate(1);  // keep round alignment
  }
  const VlResult probe = co_await ctx.validate(0);
  if (probe.ok) {
    (void)co_await ctx.ll(100 + static_cast<RegId>(i));
  } else {
    (void)co_await ctx.swap(200 + static_cast<RegId>(i),
                            Value::of_u64(static_cast<std::uint64_t>(i)));
  }
  co_return Value::of_u64(0);
}

ProcBody link_probe() {
  return [](ProcCtx ctx, ProcId i, int n) {
    return link_probe_body(ctx, i, n);
  };
}

class LinkProbeIndistSweep : public ::testing::TestWithParam<int> {};

TEST_P(LinkProbeIndistSweep, Lemma52HoldsForPsetSensitiveAlgorithm) {
  const int n = GetParam();
  const auto tosses = std::make_shared<SeededTossAssignment>(13);
  System all_sys(n, link_probe(), tosses);
  const RunLog all_log = run_adversary(all_sys);
  ASSERT_TRUE(all_log.all_terminated);
  const UpTracker up = UpTracker::over(all_log);

  Rng rng(static_cast<std::uint64_t>(n));
  for (int iter = 0; iter < 6; ++iter) {
    ProcSet s(n);
    for (ProcId p = 0; p < n; ++p) {
      if (rng.next_bool()) s.insert(p);
    }
    if (s.empty()) s.insert(static_cast<ProcId>(rng.next_below(
        static_cast<std::uint64_t>(n))));
    System s_sys(n, link_probe(), tosses);
    const RunLog s_log = run_s_run(s_sys, all_log, up, s);
    const IndistReport report =
        check_indistinguishability(all_log, s_log, up, s);
    EXPECT_TRUE(report.ok)
        << "S=" << s.to_string() << ": " << report.violations.front();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LinkProbeIndistSweep,
                         ::testing::Values(2, 3, 4, 6, 9, 14));

// Claim A.4: if some process performs a successful SC on R in round r,
// then UP(R, r-1) ⊆ UP(R, r).
void check_claim_a4(const RunLog& log) {
  const UpTracker up = UpTracker::over(log);
  for (const RoundRecord& rec : log.rounds) {
    for (const OpRecord& op : rec.ops) {
      if (op.op.kind != OpKind::kSC || !op.result.flag) continue;
      EXPECT_TRUE(up.up_register(op.op.reg, rec.round - 1)
                      .subset_of(up.up_register(op.op.reg, rec.round)))
          << "Claim A.4 violated at R" << op.op.reg << " round "
          << rec.round;
    }
  }
}

// Claim A.5 (specialized): if UP(p, r) ⊆ S and p performs SC on R in
// round r, then UP(R, r) ⊆ S — equivalently UP(R, r) ⊆ UP(p, r).
void check_claim_a5(const RunLog& log) {
  const UpTracker up = UpTracker::over(log);
  for (const RoundRecord& rec : log.rounds) {
    for (const OpRecord& op : rec.ops) {
      if (op.op.kind != OpKind::kSC) continue;
      EXPECT_TRUE(up.up_register(op.op.reg, rec.round)
                      .subset_of(up.up_process(op.proc, rec.round)))
          << "Claim A.5 violated: p" << op.proc << " SC on R" << op.op.reg
          << " round " << rec.round;
    }
  }
}

class AppendixClaimsSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AppendixClaimsSweep, ClaimsA4A5HoldOnAdversaryRuns) {
  const int n = std::get<0>(GetParam());
  const int alg = std::get<1>(GetParam());
  ProcBody body;
  std::shared_ptr<TossAssignment> tosses;
  switch (alg) {
    case 0:
      body = tournament_wakeup();
      break;
    case 1:
      body = counter_wakeup();
      break;
    case 2:
      body = swap_mix_wakeup();
      break;
    case 3:
      body = link_probe();
      break;
    default:
      body = random_mix_body(14, 6);
      tosses = std::make_shared<SeededTossAssignment>(
          static_cast<std::uint64_t>(n) * 131);
      break;
  }
  System sys(n, body, tosses);
  const RunLog log = run_adversary(sys);
  ASSERT_TRUE(log.all_terminated);
  check_claim_a4(log);
  check_claim_a5(log);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AppendixClaimsSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 13),
                       ::testing::Values(0, 1, 2, 3, 4)));

// The UP sets of the (S,A)-run's own adversary structure: running the UP
// rules over the S-run log must also satisfy Lemma 5.1 (the S-run is just
// another legal adversary-structured run).
TEST(SRunUpSets, Lemma51HoldsOnSRunLogs) {
  const int n = 10;
  System all_sys(n, swap_mix_wakeup());
  const RunLog all_log = run_adversary(all_sys);
  const UpTracker up = UpTracker::over(all_log);
  const ProcSet s = ProcSet::of(n, {0, 1, 4, 7});
  System s_sys(n, swap_mix_wakeup());
  const RunLog s_log = run_s_run(s_sys, all_log, up, s);
  const UpTracker s_up = UpTracker::over(s_log);
  EXPECT_TRUE(s_up.lemma51_holds());
}

}  // namespace
}  // namespace llsc
