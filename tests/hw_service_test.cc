// Service-mode load generator (hw/service.h) and the HDR-style latency
// histogram it reports into. The accounting contract: a clean open-loop
// run serves every offered op, the merged histogram holds exactly one
// sample per served op, and quantiles are monotone in q.
#include "hw/service.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hw/latency_histogram.h"

namespace llsc {
namespace {

TEST(LatencyHistogramTest, QuantilesBoundSamplesWithinBucketError) {
  LatencyHistogram h;
  // 1..1000 ns, uniform: p50 ~ 500, p99 ~ 990. Bucket edges are upper
  // bounds with 1/32 sub-bucket resolution, so a quantile never
  // under-reports its sample and overshoots by < ~6%.
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_GE(h.p50_ns(), 500u);
  EXPECT_LE(h.p50_ns(), 532u);
  EXPECT_GE(h.p99_ns(), 990u);
  EXPECT_LE(h.p99_ns(), 1056u);
  EXPECT_GE(h.max(), 1000u);
}

TEST(LatencyHistogramTest, QuantilesAreMonotoneInQ) {
  LatencyHistogram h;
  std::uint64_t v = 1;
  for (int k = 0; k < 4000; ++k) {
    h.record(v);
    v = v * 1664525 + 1013904223;  // spread samples across octaves
    v %= 10'000'000;
  }
  EXPECT_LE(h.p50_ns(), h.p90_ns());
  EXPECT_LE(h.p90_ns(), h.p99_ns());
  EXPECT_LE(h.p99_ns(), h.p999_ns());
  EXPECT_LE(h.p999_ns(), h.max() * 2);  // p999 edge can round up once
}

TEST(LatencyHistogramTest, MergeIsCountExact) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (std::uint64_t v = 1; v <= 100; ++v) a.record(v);
  for (std::uint64_t v = 1000; v <= 1100; ++v) b.record(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 201u);
  EXPECT_GE(a.max(), 1100u);
  LatencyHistogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 201u);
}

TEST(LatencyHistogramTest, ExtremeValuesLandInTopAndBottomBuckets) {
  LatencyHistogram h;
  h.record(0);
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.quantile_ns(1.0), 1ull << 58);
}

class HwServiceTest : public ::testing::TestWithParam<ServiceWorkload> {};

INSTANTIATE_TEST_SUITE_P(
    Workloads, HwServiceTest,
    ::testing::Values(ServiceWorkload::kFetchInc, ServiceWorkload::kWakeup,
                      ServiceWorkload::kCombining),
    [](const ::testing::TestParamInfo<ServiceWorkload>& info) {
      switch (info.param) {
        case ServiceWorkload::kFetchInc:
          return "FetchInc";
        case ServiceWorkload::kWakeup:
          return "Wakeup";
        case ServiceWorkload::kCombining:
          return "Combining";
      }
      return "Unknown";
    });

TEST_P(HwServiceTest, CleanRunServesEveryOfferedOp) {
  ServiceOptions options;
  options.procs = 16;
  options.threads = 2;
  options.ops_per_proc = 4;
  options.arrival_rate_hz = 200'000.0;  // fast: the test is accounting
  options.workload = GetParam();
  options.seed = 5;
  const ServiceResult r = run_service(options);
  ASSERT_TRUE(r.run.ok);
  EXPECT_EQ(r.offered_ops, 64u);
  EXPECT_EQ(r.served_ops, r.offered_ops);
  EXPECT_EQ(r.run.latency.count(), r.served_ops);
  EXPECT_GT(r.throughput_ops_per_sec, 0.0);
  EXPECT_LE(r.run.latency.p50_ns(), r.run.latency.p99_ns());
  EXPECT_LE(r.run.latency.p99_ns(), r.run.latency.p999_ns());
  // The pool really was oversubscribed and scheduling.
  EXPECT_EQ(r.run.sched.num_threads, 2);
  EXPECT_EQ(r.run.sched.num_procs, 16);
  EXPECT_GT(r.run.sched.yields, 0u);
}

TEST(HwServiceDeterminismTest, ArrivalScheduleIsPureInSeed) {
  // Same seed: identical offered/served accounting and toss-independent
  // results. The latency VALUES differ run to run (wall clock), but the
  // deterministic schedule means the op counts cannot.
  ServiceOptions options;
  options.procs = 8;
  options.threads = 2;
  options.ops_per_proc = 3;
  options.arrival_rate_hz = 500'000.0;
  options.workload = ServiceWorkload::kFetchInc;
  options.seed = 42;
  const ServiceResult a = run_service(options);
  const ServiceResult b = run_service(options);
  ASSERT_TRUE(a.run.ok);
  ASSERT_TRUE(b.run.ok);
  EXPECT_EQ(a.offered_ops, b.offered_ops);
  EXPECT_EQ(a.served_ops, b.served_ops);
  EXPECT_EQ(a.run.shared_ops, b.run.shared_ops);
}

}  // namespace
}  // namespace llsc
