// Tests for the Section 5.3 UP-set update rules and Lemma 5.1.
#include "core/up_tracker.h"

#include <gtest/gtest.h>

#include "core/adversary.h"
#include "runtime/toss.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

TEST(UpTracker, InitialSets) {
  UpTracker t(4);
  for (ProcId p = 0; p < 4; ++p) {
    EXPECT_EQ(t.up_process(p, 0), ProcSet::singleton(4, p));
  }
  EXPECT_TRUE(t.up_register(0, 0).empty());
  EXPECT_TRUE(t.up_register(12345, 0).empty());
  EXPECT_EQ(t.max_up_size(0), 1u);
}

// Two processes, a hand-checkable interaction:
//   p0: LL(0); SC(0, x); done.       p1: LL(0); SC(0, y); LL(0); done.
// Round 1: both LL(0) — UP unchanged (register 0's set is empty).
// Round 2: both SC(0): p0 (lower id) succeeds -> UP(R0,2) = UP(p0,1) = {p0};
//          p1's SC fails -> UP(p1,2) = {p1} ∪ UP(R0,2) = {p0,p1};
//          p0's own SC: UP(p0,2) = {p0} ∪ UP(R0,1) = {p0}.
// Round 3: p1 LL(0): UP(p1,3) = UP(p1,2) ∪ UP(R0,2) = {p0,p1}.
SimTask two_ops_body(ProcCtx ctx) {
  (void)co_await ctx.ll(0);
  (void)co_await ctx.sc(0, Value::of_u64(ctx.id() + 10));
  if (ctx.id() == 1) (void)co_await ctx.ll(0);
  co_return Value::of_u64(0);
}

TEST(UpTracker, HandComputedScenario) {
  System sys(2, [](ProcCtx ctx, ProcId, int) { return two_ops_body(ctx); });
  const RunLog log = run_adversary(sys);
  ASSERT_TRUE(log.all_terminated);
  ASSERT_GE(log.num_rounds(), 3);
  const UpTracker t = UpTracker::over(log);

  EXPECT_EQ(t.up_process(0, 1), ProcSet::singleton(2, 0));
  EXPECT_EQ(t.up_process(1, 1), ProcSet::singleton(2, 1));
  EXPECT_TRUE(t.up_register(0, 1).empty());

  EXPECT_EQ(t.up_register(0, 2), ProcSet::singleton(2, 0));
  EXPECT_EQ(t.up_process(0, 2), ProcSet::singleton(2, 0));
  EXPECT_EQ(t.up_process(1, 2), ProcSet::full(2));

  EXPECT_EQ(t.up_process(1, 3), ProcSet::full(2));
  EXPECT_EQ(t.up_process(0, 3), ProcSet::singleton(2, 0));
}

// Swap rules: p0 and p1 both swap register 0 in the same round.
//   Register: UP(R0,1) = UP(last swapper = p1, 0) = {p1}.
//   First swapper p0: UP(p0,1) = {p0} ∪ UP(R0,0) = {p0}.
//   Second swapper p1: reads what p0 wrote: UP(p1,1) = {p1} ∪ {p0}.
SimTask swapper_body(ProcCtx ctx) {
  (void)co_await ctx.swap(0, Value::of_u64(ctx.id()));
  co_return Value::of_u64(0);
}

TEST(UpTracker, SwapRules) {
  System sys(2, [](ProcCtx ctx, ProcId, int) { return swapper_body(ctx); });
  const RunLog log = run_adversary(sys);
  const UpTracker t = UpTracker::over(log);
  EXPECT_EQ(t.up_register(0, 1), ProcSet::singleton(2, 1));
  EXPECT_EQ(t.up_process(0, 1), ProcSet::singleton(2, 0));
  EXPECT_EQ(t.up_process(1, 1), ProcSet::full(2));
}

// Move rules: p0 swaps a mark into R1 (round 1) then p1 moves R1 -> R2
// (its first op is delayed by an initial toss... simpler: p1 moves in
// round 1 from an untouched register; p2 later reads the destination).
//   Round 1: p1: move(R10 -> R20). UP(R20,1) = UP(R10,0) ∪ UP(p1,0) = {p1};
//   p1 itself learns nothing: UP(p1,1) = {p1}.
//   Round 2: p0: LL(R20): UP(p0,2) = {p0} ∪ UP(R20,1) = {p0,p1}.
SimTask mover_body(ProcCtx ctx) {
  if (ctx.id() == 1) {
    co_await ctx.move(10, 20);
  } else {
    (void)co_await ctx.validate(99);  // keep round alignment
    (void)co_await ctx.ll(20);
  }
  co_return Value::of_u64(0);
}

TEST(UpTracker, MoveRules) {
  System sys(2, [](ProcCtx ctx, ProcId, int) { return mover_body(ctx); });
  const RunLog log = run_adversary(sys);
  const UpTracker t = UpTracker::over(log);
  EXPECT_EQ(t.up_register(20, 1), ProcSet::singleton(2, 1));
  EXPECT_EQ(t.up_process(1, 1), ProcSet::singleton(2, 1));
  EXPECT_EQ(t.up_process(0, 2), ProcSet::full(2));
}

TEST(UpTracker, Lemma51Bound) {
  EXPECT_EQ(UpTracker::lemma51_bound(0), 1u);
  EXPECT_EQ(UpTracker::lemma51_bound(1), 4u);
  EXPECT_EQ(UpTracker::lemma51_bound(3), 64u);
  EXPECT_EQ(UpTracker::lemma51_bound(40), ~std::size_t{0});  // saturates
}

class Lemma51Sweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

// Lemma 5.1: |UP(X,r)| <= 4^r for every algorithm under the adversary —
// checked for deterministic wakeups and toss-driven random op mixes.
TEST_P(Lemma51Sweep, UpSizesBoundedBy4PowR) {
  const int n = std::get<0>(GetParam());
  const int alg = std::get<1>(GetParam());
  ProcBody body;
  std::shared_ptr<TossAssignment> tosses;
  switch (alg) {
    case 0:
      body = tournament_wakeup();
      break;
    case 1:
      body = swap_mix_wakeup();
      break;
    case 2:
      body = counter_wakeup();
      break;
    default:
      body = random_mix_body(12, 8);
      tosses = std::make_shared<SeededTossAssignment>(
          static_cast<std::uint64_t>(n) * 77 + 5);
      break;
  }
  System sys(n, body, tosses);
  const RunLog log = run_adversary(sys);
  ASSERT_TRUE(log.all_terminated);
  const UpTracker t = UpTracker::over(log);
  EXPECT_TRUE(t.lemma51_holds());
  for (int r = 0; r <= t.num_rounds(); ++r) {
    EXPECT_LE(t.max_up_size(r), UpTracker::lemma51_bound(r)) << "round " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma51Sweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 9, 16, 24),
                       ::testing::Values(0, 1, 2, 3)));

TEST(UpTracker, UpSetsGrowMonotonically) {
  System sys(8, tournament_wakeup());
  const RunLog log = run_adversary(sys);
  const UpTracker t = UpTracker::over(log);
  for (ProcId p = 0; p < 8; ++p) {
    for (int r = 1; r <= t.num_rounds(); ++r) {
      EXPECT_TRUE(t.up_process(p, r - 1).subset_of(t.up_process(p, r)))
          << "UP(p" << p << ") shrank at round " << r;
    }
  }
}

}  // namespace
}  // namespace llsc
