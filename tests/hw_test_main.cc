// Custom gtest main for the hw test binaries: after InitGoogleTest
// consumes its own flags, parse --timeout_ms=N and arm the process-wide
// HwExecutor watchdog default (see default_hw_timeout_ms()). CTest passes
// a generous value so a hung real-thread test fails with a taxonomy
// instead of stalling the job until the ctest-level TIMEOUT kills it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "hw/hw_executor.h"

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  static const char kFlag[] = "--timeout_ms=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      llsc::set_default_hw_timeout_ms(
          std::strtoull(argv[i] + sizeof(kFlag) - 1, nullptr, 10));
    }
  }
  return RUN_ALL_TESTS();
}
